//! A dependency-free Rust lexer.
//!
//! `gage-lint` v1 matched rules against regex-ish line scans, which meant
//! every rule re-solved (and occasionally mis-solved) the same three
//! problems: comments, string literals and char-vs-lifetime quotes. The
//! lexer solves them once. It produces a flat [`Tok`] stream with byte
//! spans and line/column positions; comments and whitespace are consumed
//! (never tokens), so a rule that looks for the identifier `HashMap` can
//! never fire inside a doc comment or a string literal again.
//!
//! The lexer is deliberately *not* a full Rust grammar: it recognizes the
//! token shapes (identifiers, lifetimes, numeric/char/string/raw-string
//! literals, multi-byte punctuation) and nothing more. Anything it cannot
//! classify becomes a one-byte [`TokKind::Punct`], which is exactly the
//! right degradation for a linter — unknown syntax flows through without
//! derailing the stream.

/// Lexical class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `_`, `r#type`).
    Ident,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Integer literal, any base, including suffixed forms (`0xFF`, `1u32`).
    Int,
    /// Float literal (`1.5`, `1e-9`, `2.0f64`).
    Float,
    /// String literal of any flavour: `"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Punctuation, possibly multi-byte (`::`, `=>`, `==`, single `{`).
    Punct,
}

/// One lexed token: kind plus its byte span and 1-based position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok {
    /// Lexical class.
    pub kind: TokKind,
    /// Byte offset of the first byte in the source.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: usize,
    /// 1-based column (in bytes) of the first byte.
    pub col: usize,
}

impl Tok {
    /// The token's source text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Multi-byte punctuation, longest first so the greedy match is correct.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "=>", "==", "!=", "<=", ">=", "->", "..", "&&", "||", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

fn is_ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic()
}

fn is_ident_cont(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// Lexes `src` into a token stream. Comments (line, nested block, doc) and
/// whitespace produce no tokens. The lexer never fails: malformed input
/// degrades to one-byte `Punct` tokens.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        src: src.as_bytes(),
        text: src,
        pos: 0,
        line: 1,
        line_start: 0,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    text: &'a str,
    pos: usize,
    line: usize,
    /// Byte offset where the current line begins (for column math).
    line_start: usize,
    out: Vec<Tok>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Tok> {
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            match c {
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                    self.line_start = self.pos;
                }
                _ if c.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' if self.raw_string_ahead(1) => self.raw_string(1),
                b'b' if self.peek(1) == Some(b'"') => self.string(1, TokKind::Str),
                b'b' if self.peek(1) == Some(b'\'') => self.char_or_lifetime(1),
                b'b' if self.peek(1) == Some(b'r') && self.raw_string_ahead(2) => {
                    self.raw_string(2)
                }
                b'r' if self.peek(1) == Some(b'#') && self.peek(2).is_some_and(is_ident_start) => {
                    // Raw identifier `r#type`.
                    let start = self.pos;
                    self.pos += 2;
                    while self.pos < self.src.len() && is_ident_cont(self.src[self.pos]) {
                        self.pos += 1;
                    }
                    self.push(TokKind::Ident, start);
                }
                _ if is_ident_start(c) => self.ident_or_number_suffixed(),
                _ if c.is_ascii_digit() => self.number(),
                b'"' => self.string(0, TokKind::Str),
                b'\'' => self.char_or_lifetime(0),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, start: usize) {
        self.out.push(Tok {
            kind,
            start,
            end: self.pos,
            line: self.line,
            col: start - self.line_start + 1,
        });
    }

    fn bump_line(&mut self) {
        self.line += 1;
        self.line_start = self.pos;
    }

    fn line_comment(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.pos += 1;
        }
    }

    fn block_comment(&mut self) {
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            match self.src[self.pos] {
                b'/' if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.pos += 2;
                }
                b'*' if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    self.pos += 2;
                }
                b'\n' => {
                    self.pos += 1;
                    self.bump_line();
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Whether `r`/`br` at the current position starts a raw string:
    /// `offset` bytes of prefix, then zero or more `#`, then `"`.
    fn raw_string_ahead(&self, offset: usize) -> bool {
        let mut i = offset;
        while self.peek(i) == Some(b'#') {
            i += 1;
        }
        self.peek(i) == Some(b'"')
    }

    fn raw_string(&mut self, prefix: usize) {
        let start = self.pos;
        let start_line = self.line;
        let start_col = self.pos - self.line_start + 1;
        self.pos += prefix;
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        loop {
            match self.peek(0) {
                None => break,
                Some(b'\n') => {
                    self.pos += 1;
                    self.bump_line();
                }
                Some(b'"') => {
                    // Need `hashes` trailing #s to close.
                    let mut i = 1;
                    let mut seen = 0;
                    while seen < hashes && self.peek(i) == Some(b'#') {
                        seen += 1;
                        i += 1;
                    }
                    self.pos += 1;
                    if seen == hashes {
                        self.pos += hashes;
                        break;
                    }
                }
                Some(_) => self.pos += 1,
            }
        }
        self.out.push(Tok {
            kind: TokKind::Str,
            start,
            end: self.pos,
            line: start_line,
            col: start_col,
        });
    }

    fn string(&mut self, prefix: usize, kind: TokKind) {
        let start = self.pos;
        let start_line = self.line;
        let start_col = self.pos - self.line_start + 1;
        self.pos += prefix + 1; // prefix + opening quote
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.pos = (self.pos + 2).min(self.src.len()),
                b'"' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => {
                    self.pos += 1;
                    self.bump_line();
                }
                _ => self.pos += 1,
            }
        }
        self.out.push(Tok {
            kind,
            start,
            end: self.pos,
            line: start_line,
            col: start_col,
        });
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime) from `'\n'`.
    fn char_or_lifetime(&mut self, prefix: usize) {
        let start = self.pos;
        let q = self.pos + prefix; // position of the opening quote
        let first = self.src.get(q + 1).copied();
        let second = self.src.get(q + 2).copied();
        let is_lifetime = prefix == 0 && first.is_some_and(is_ident_start) && second != Some(b'\'');
        if is_lifetime {
            self.pos = q + 1;
            while self.pos < self.src.len() && is_ident_cont(self.src[self.pos]) {
                self.pos += 1;
            }
            self.push(TokKind::Lifetime, start);
            return;
        }
        // Char/byte literal: consume to the closing quote on this line.
        self.pos = q + 1;
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.pos = (self.pos + 2).min(self.src.len()),
                b'\'' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => break, // malformed; don't eat the rest of the file
                _ => self.pos += 1,
            }
        }
        self.push(TokKind::Char, start);
    }

    fn ident_or_number_suffixed(&mut self) {
        let start = self.pos;
        while self.pos < self.src.len() && is_ident_cont(self.src[self.pos]) {
            self.pos += 1;
        }
        self.push(TokKind::Ident, start);
    }

    fn number(&mut self) {
        let start = self.pos;
        let mut is_float = false;
        // Integer part (covers 0x/0o/0b bases since those are ident chars).
        while self.peek(0).is_some_and(is_ident_cont) {
            self.pos += 1;
        }
        // Fractional part: a dot followed by a digit (so `0..10` and
        // `1.max(2)` stay integers), or a trailing dot not followed by
        // another dot or an identifier (`1.` is a float).
        if self.peek(0) == Some(b'.') {
            match self.peek(1) {
                Some(c) if c.is_ascii_digit() => {
                    is_float = true;
                    self.pos += 1;
                    while self.peek(0).is_some_and(is_ident_cont) {
                        self.pos += 1;
                    }
                }
                Some(b'.') => {}
                Some(c) if is_ident_start(c) => {}
                _ => {
                    is_float = true;
                    self.pos += 1;
                }
            }
        }
        // `1e-9` / `2.5e+3`: the exponent sign is part of the literal.
        let txt = &self.text[start..self.pos];
        if (txt.ends_with('e') || txt.ends_with('E'))
            && txt.bytes().next().is_some_and(|c| c.is_ascii_digit())
            && !txt.starts_with("0x")
            && !txt.starts_with("0X")
            && matches!(self.peek(0), Some(b'+') | Some(b'-'))
            && self.peek(1).is_some_and(|c| c.is_ascii_digit())
        {
            is_float = true;
            self.pos += 1;
            while self.peek(0).is_some_and(is_ident_cont) {
                self.pos += 1;
            }
        }
        // A dotless literal with an in-place exponent (`1e9`) is a float.
        let txt = &self.text[start..self.pos];
        if !is_float
            && !txt.starts_with("0x")
            && !txt.starts_with("0X")
            && txt.len() > 1
            && txt[1..].contains(['e', 'E'])
            && txt
                .bytes()
                .all(|c| c.is_ascii_digit() || c == b'e' || c == b'E' || c == b'_')
        {
            is_float = true;
        }
        if txt.contains('.') {
            is_float = true;
        }
        self.push(
            if is_float {
                TokKind::Float
            } else {
                TokKind::Int
            },
            start,
        );
    }

    fn punct(&mut self) {
        let start = self.pos;
        let rest = &self.text[self.pos..];
        for p in MULTI_PUNCT {
            if rest.starts_with(p) {
                self.pos += p.len();
                self.push(TokKind::Punct, start);
                return;
            }
        }
        self.pos += 1;
        self.push(TokKind::Punct, start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn comments_and_strings_produce_no_code_tokens() {
        let toks = kinds("let x = 1; // HashMap here\n/* Instant */ y");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "x", "y"]);
    }

    #[test]
    fn string_contents_are_opaque() {
        let toks = kinds(r#"let s = "HashMap uses Instant";"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("HashMap")));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "HashMap"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r##"let s = r#"quote " inside"#; after"##;
        let toks = kinds(src);
        assert!(toks.iter().any(|(k, _)| *k == TokKind::Str));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "after"));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("fn f<'a>(c: char) { if c == '\"' {} let s: &'static str; }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "'a"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "'static"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Char && t == "'\"'"));
    }

    #[test]
    fn numbers_int_vs_float() {
        let toks = kinds("a[4] 1.5 0..10 1e-9 2.0f64 0xFF 1.max(2)");
        let floats: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Float)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(floats, vec!["1.5", "1e-9", "2.0f64"]);
        let ints: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Int)
            .map(|(_, t)| t.as_str())
            .collect();
        assert!(ints.contains(&"4") && ints.contains(&"0xFF") && ints.contains(&"10"));
    }

    #[test]
    fn multibyte_punct_is_one_token() {
        let toks = kinds("a == b != c => d :: e -> f");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "=>", "::", "->"]);
    }

    #[test]
    fn positions_are_one_based_and_line_tracked() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* x /* y */ z */ b");
        let idents: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(idents, vec!["a", "b"]);
    }

    #[test]
    fn byte_literals() {
        let toks = kinds(r#"b'\n' b"bytes" br"raw""#);
        assert_eq!(toks[0].0, TokKind::Char);
        assert_eq!(toks[1].0, TokKind::Str);
        assert_eq!(toks[2].0, TokKind::Str);
    }
}
