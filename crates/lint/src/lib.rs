//! `gage-lint` — a dependency-free, line/token-level invariant checker for
//! the Gage workspace.
//!
//! The paper's guarantees rest on properties no compiler checks: the
//! simulator must be *deterministic* (same seed → same Table 1), the
//! splice/scheduler *hot path* must never panic mid-connection, and the
//! QoS *accounting math* must not silently compare floats for equality.
//! This crate walks every workspace source file and manifest and enforces
//! those invariants as lint rules:
//!
//! | rule | scope | forbids |
//! |---|---|---|
//! | `determinism-clock` | gage-des, gage-core, gage-cluster, gage-workload | `Instant`, `SystemTime` (wall clocks in simulated time) |
//! | `determinism-rng` | same | `thread_rng`, `rand::random` (unseeded entropy) |
//! | `determinism-hash-order` | same | `HashMap`, `HashSet` (iteration order varies per process) |
//! | `hot-path-panic` | gage-core::{scheduler,queue,classify,conn_table,node}, gage-net::{splice,tcp,packet} | `.unwrap()`, `.expect(`, `panic!`, `todo!`, `unimplemented!` |
//! | `hot-path-index` | same | indexing by integer literal (`data[4]`) |
//! | `hot-path-btree` | gage-core::conn_table, gage-des::event, gage-cluster::sim | `BTreeMap`, `BTreeSet` (O(log n) walk on per-packet state; use `gage_collections::DetMap`/`Slab`) |
//! | `no-print` | all library code | `println!`, `eprintln!`, `dbg!` |
//! | `obs-no-adhoc-print` | gage-core::scheduler, gage-cluster::sim, gage-net::splice, gage-obs | `print!`, `eprint!`, `stdout()`, `stderr()` (instrumented modules report through `Tracer`/`Registry`) |
//! | `crate-attrs` | every lib crate | missing `#![forbid(unsafe_code)]` / `#![warn(missing_docs)]` |
//! | `float-eq` | gage-core | `==`/`!=` on float literals or resource/credit fields |
//! | `watchdog-set-up` | everywhere except gage-core::node, gage-cluster::{sim,faults} | `.set_up(` (node-liveness flips outside the watchdog/FaultPlan skip hysteresis and the NodeDown/NodeUp trace) |
//! | `trace-kind-exhaustive` | gage-obs::spans | wildcard `_ =>` match arms (the span reconstructor must handle every `TraceKind` variant explicitly so new kinds fail to compile, not silently vanish from timelines) |
//! | `dep-version` | every `Cargo.toml` | wildcard versions, literal versions outside `[workspace.dependencies]`, duplicated versions |
//!
//! Test code (`#[cfg(test)]` blocks), binaries (`src/bin/`, `main.rs`),
//! comments and string literals are exempt from source rules. Any line can
//! opt out with a trailing `// lint:allow(<rule>)` comment; a file can opt
//! out of `crate-attrs` with `// lint:allow-file(crate-attrs)` in its first
//! ten lines. Run as `cargo run -p gage-lint` (add `--json` for a
//! machine-readable report) or let the `workspace_clean` test gate tier-1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose sources must stay deterministic (they produce the paper's
/// tables; a wall clock or unseeded RNG would un-reproduce them).
const DETERMINISM_CRATES: &[&str] = &[
    "gage-des",
    "gage-core",
    "gage-cluster",
    "gage-workload",
    "gage-collections",
    "gage-obs",
];

/// (crate, module stems) whose sources sit on the per-request path and must
/// not panic.
const HOT_PATH_MODULES: &[(&str, &[&str])] = &[
    (
        "gage-core",
        &["scheduler", "queue", "classify", "conn_table", "node"],
    ),
    ("gage-net", &["splice", "tcp", "packet"]),
];

/// (crate, module stems) holding per-connection/per-event tables that PR 2
/// moved to O(1) structures; an ordered tree creeping back in would put the
/// O(log n) walk back on every packet.
const HOT_PATH_BTREE_MODULES: &[(&str, &[&str])] = &[
    ("gage-core", &["conn_table"]),
    ("gage-des", &["event"]),
    ("gage-cluster", &["sim"]),
];

/// (crate, module stems) instrumented by gage-obs. Observability in these
/// modules must flow through the `Tracer`/`Registry` (deterministic, zero
/// when disabled) — never ad-hoc writes to the process's stdout/stderr,
/// which would both break trace determinism and bypass the ring's bounds.
const OBS_MODULES: &[(&str, &[&str])] = &[
    ("gage-core", &["scheduler"]),
    ("gage-cluster", &["sim"]),
    ("gage-net", &["splice"]),
    ("gage-obs", &["ring", "registry", "lib", "spans", "audit"]),
];

/// (crate, module stems) that fold raw trace records back into structured
/// timelines. These must match every `TraceKind` variant explicitly: a
/// wildcard `_ =>` arm means a newly added kind compiles but silently
/// disappears from reconstructed spans, breaking the
/// exactly-one-terminal-state invariant without any test noticing.
const TRACE_EXHAUSTIVE_MODULES: &[(&str, &[&str])] = &[("gage-obs", &["spans"])];

/// (crate, module stems) allowed to flip node liveness with
/// `NodeScheduler::set_up`: the node table itself (gage-core::node), the
/// watchdog (gage-cluster::sim) and the fault-plan machinery
/// (gage-cluster::faults). Anywhere else a direct call would bypass the
/// watchdog's grace-period hysteresis and skip the NodeDown/NodeUp trace
/// records the chaos suite replays.
const SET_UP_MODULES: &[(&str, &[&str])] = &[
    ("gage-core", &["node"]),
    ("gage-cluster", &["sim", "faults"]),
];

/// Float-carrying field names whose equality comparison is almost always a
/// bug in resource/credit math.
const FLOAT_FIELDS: &[&str] = &[
    "cpu_us",
    "disk_us",
    "net_bytes",
    "credit",
    "balance",
    "deficit",
    "grps",
];

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &[
    "target",
    "vendor",
    "fixtures",
    ".git",
    ".claude",
    "related",
    "node_modules",
];

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (e.g. `hot-path-panic`).
    pub rule: &'static str,
    /// Path relative to the linted root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Serializes findings as the machine-readable JSON report.
pub fn report_json(findings: &[Finding]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let items: Vec<String> = findings
        .iter()
        .map(|f| {
            format!(
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
                esc(f.rule),
                esc(&f.file),
                f.line,
                esc(&f.message)
            )
        })
        .collect();
    format!(
        "{{\"count\":{},\"findings\":[{}]}}",
        findings.len(),
        items.join(",")
    )
}

/// Lints every package under `root` (manifests + `src/` trees) and returns
/// all findings, sorted by file then line.
///
/// # Errors
///
/// Propagates filesystem errors; unreadable UTF-8 files are skipped.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut manifests = Vec::new();
    find_manifests(root, &mut manifests)?;
    if manifests.is_empty() {
        // A mistyped root would otherwise report "0 findings" and pass.
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no Cargo.toml found under {}", root.display()),
        ));
    }
    let mut findings = Vec::new();
    // (dep name, version, file, line) across manifests, for duplicates.
    let mut literal_versions: Vec<(String, String, String, usize)> = Vec::new();

    for manifest in &manifests {
        let Ok(text) = fs::read_to_string(manifest) else {
            continue;
        };
        let rel_manifest = rel(root, manifest);
        lint_manifest(&text, &rel_manifest, &mut findings, &mut literal_versions);

        let Some(package) = package_name(&text) else {
            continue; // virtual workspace manifest: no sources of its own
        };
        let src = manifest.parent().map(|d| d.join("src"));
        if let Some(src) = src {
            if src.is_dir() {
                lint_sources(root, &src, &package, &mut findings)?;
            }
        }
    }

    // Duplicated literal versions of the same dependency across manifests.
    literal_versions.sort();
    for pair in literal_versions.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        if a.0 == b.0 {
            findings.push(Finding {
                rule: "dep-version",
                file: b.2.clone(),
                line: b.3,
                message: format!(
                    "dependency `{}` also pinned in {} (line {}); declare it once in [workspace.dependencies]",
                    b.0, a.2, a.3
                ),
            });
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}

fn rel(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .into_owned()
}

fn find_manifests(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let manifest = dir.join("Cargo.toml");
    if manifest.is_file() {
        out.push(manifest);
    }
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return Ok(()),
    };
    let mut subdirs: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| !SKIP_DIRS.contains(&n) && !n.starts_with('.'))
        })
        .collect();
    subdirs.sort();
    for sub in subdirs {
        find_manifests(&sub, out)?;
    }
    Ok(())
}

fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_package = t == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = t.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    return Some(rest.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

// ---------------------------------------------------------------- manifests

fn lint_manifest(
    text: &str,
    file: &str,
    findings: &mut Vec<Finding>,
    literal_versions: &mut Vec<(String, String, String, usize)>,
) {
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let t = raw.trim();
        if t.starts_with('[') {
            section = t.trim_matches(['[', ']']).to_string();
            continue;
        }
        if !section.ends_with("dependencies") {
            continue;
        }
        let Some((dep, value)) = t.split_once('=') else {
            continue;
        };
        let dep = dep.trim().trim_matches('"').to_string();
        let value = value.trim();
        // `{ workspace = true }` / `{ path = ... }` / bare tables are fine.
        let version = if let Some(v) = value.strip_prefix('"') {
            Some(v.trim_end_matches('"').to_string())
        } else if value.starts_with('{') && value.contains("version") {
            value
                .split("version")
                .nth(1)
                .and_then(|v| v.split('"').nth(1))
                .map(|v| v.to_string())
        } else {
            None
        };
        let Some(version) = version else { continue };
        if version.contains('*') {
            findings.push(Finding {
                rule: "dep-version",
                file: file.to_string(),
                line: line_no,
                message: format!("wildcard version for `{dep}`: pin an exact requirement"),
            });
            continue;
        }
        if section == "workspace.dependencies" {
            // The one legitimate home for literal versions.
            continue;
        }
        findings.push(Finding {
            rule: "dep-version",
            file: file.to_string(),
            line: line_no,
            message: format!(
                "`{dep}` pins \"{version}\" locally: inherit it with `workspace = true`"
            ),
        });
        literal_versions.push((dep, version, file.to_string(), line_no));
    }
}

// ------------------------------------------------------------------ sources

fn lint_sources(
    root: &Path,
    src: &Path,
    package: &str,
    findings: &mut Vec<Finding>,
) -> io::Result<()> {
    let mut files = Vec::new();
    collect_rs(src, &mut files)?;
    files.sort();
    for path in files {
        let Ok(text) = fs::read_to_string(&path) else {
            continue;
        };
        let rel_path = rel(root, &path);
        let is_bin = rel_path.contains("/bin/") || rel_path.ends_with("main.rs");
        let is_lib_root = path.ends_with("src/lib.rs");
        lint_file(&text, &rel_path, package, is_bin, is_lib_root, findings);
    }
    Ok(())
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)?.flatten() {
        let p = entry.path();
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

struct FileContext<'a> {
    package: &'a str,
    file: &'a str,
    /// Binary source (`src/bin/`, `main.rs`): `no-print` does not apply.
    is_bin: bool,
    /// Stem of the file, e.g. `scheduler` for `src/scheduler.rs`.
    stem: String,
}

fn lint_file(
    text: &str,
    file: &str,
    package: &str,
    is_bin: bool,
    is_lib_root: bool,
    findings: &mut Vec<Finding>,
) {
    let raw_lines: Vec<&str> = text.lines().collect();
    let code_lines = strip_lines(&raw_lines);
    let test_mask = test_block_mask(&code_lines);
    let stem = Path::new(file)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    let ctx = FileContext {
        package,
        file,
        is_bin,
        stem,
    };

    let file_allows: Vec<String> = raw_lines
        .iter()
        .take(10)
        .flat_map(|l| parse_allows(l, "lint:allow-file("))
        .collect();

    if is_lib_root && !file_allows.iter().any(|r| r == "crate-attrs") {
        for attr in ["#![forbid(unsafe_code)]", "#![warn(missing_docs)]"] {
            if !raw_lines.iter().any(|l| l.trim() == attr) {
                findings.push(Finding {
                    rule: "crate-attrs",
                    file: file.to_string(),
                    line: 1,
                    message: format!("library crate `{package}` is missing `{attr}`"),
                });
            }
        }
    }

    for (idx, code) in code_lines.iter().enumerate() {
        if test_mask[idx] {
            continue;
        }
        let raw = raw_lines[idx];
        let allows = parse_allows(raw, "lint:allow(");
        let mut emit = |rule: &'static str, message: String| {
            if !allows.iter().any(|r| r == rule) {
                findings.push(Finding {
                    rule,
                    file: ctx.file.to_string(),
                    line: idx + 1,
                    message,
                });
            }
        };
        check_line(&ctx, code, &mut emit);
    }
}

fn check_line(ctx: &FileContext<'_>, code: &str, emit: &mut dyn FnMut(&'static str, String)) {
    if DETERMINISM_CRATES.contains(&ctx.package) {
        for clock in ["Instant", "SystemTime"] {
            if has_word(code, clock) {
                emit(
                    "determinism-clock",
                    format!("`{clock}` is a wall clock; simulated components must use SimTime"),
                );
            }
        }
        for rng in ["thread_rng", "rand::random"] {
            if has_word(code, rng) {
                emit(
                    "determinism-rng",
                    format!("`{rng}` is unseeded; draw from an explicitly seeded StdRng"),
                );
            }
        }
        for map in ["HashMap", "HashSet"] {
            if has_word(code, map) {
                emit(
                    "determinism-hash-order",
                    format!("`{map}` iteration order varies per process; use BTreeMap/BTreeSet"),
                );
            }
        }
    }

    let hot = HOT_PATH_MODULES
        .iter()
        .any(|(pkg, stems)| *pkg == ctx.package && stems.contains(&ctx.stem.as_str()));
    if hot {
        for needle in [
            ".unwrap()",
            ".expect(",
            "panic!(",
            "todo!(",
            "unimplemented!(",
        ] {
            if code.contains(needle) {
                emit(
                    "hot-path-panic",
                    format!(
                        "`{}` can panic mid-connection; handle the None/Err case",
                        needle.trim_start_matches('.').trim_end_matches('(')
                    ),
                );
            }
        }
        if has_literal_index(code) {
            emit(
                "hot-path-index",
                "indexing by literal can panic on short input; use get() or check length"
                    .to_string(),
            );
        }
    }

    let btree_hot = HOT_PATH_BTREE_MODULES
        .iter()
        .any(|(pkg, stems)| *pkg == ctx.package && stems.contains(&ctx.stem.as_str()));
    if btree_hot {
        for tree in ["BTreeMap", "BTreeSet"] {
            if has_word(code, tree) {
                emit(
                    "hot-path-btree",
                    format!(
                        "`{tree}` puts an O(log n) walk on the per-packet path; \
                         use gage_collections::DetMap or Slab"
                    ),
                );
            }
        }
    }

    if !ctx.is_bin {
        for print in ["println!", "eprintln!", "dbg!"] {
            if has_word(code, print) {
                emit(
                    "no-print",
                    format!("`{print}` in library code; return data or use the caller's sink"),
                );
            }
        }
    }

    let obs = OBS_MODULES
        .iter()
        .any(|(pkg, stems)| *pkg == ctx.package && stems.contains(&ctx.stem.as_str()));
    if obs && !ctx.is_bin {
        let adhoc = ["print!", "eprint!"].iter().any(|t| has_word(code, t))
            || code.contains("stdout()")
            || code.contains("stderr()");
        if adhoc {
            emit(
                "obs-no-adhoc-print",
                "ad-hoc process output in an instrumented module; \
                 emit a TraceEvent or Registry metric instead"
                    .to_string(),
            );
        }
    }

    let reconstructor = TRACE_EXHAUSTIVE_MODULES
        .iter()
        .any(|(pkg, stems)| *pkg == ctx.package && stems.contains(&ctx.stem.as_str()));
    if reconstructor && has_wildcard_arm(code) {
        emit(
            "trace-kind-exhaustive",
            "wildcard `_ =>` arm in a trace reconstructor; match every TraceKind \
             variant explicitly so new kinds fail to compile instead of silently \
             vanishing from timelines"
                .to_string(),
        );
    }

    let liveness_ok = SET_UP_MODULES
        .iter()
        .any(|(pkg, stems)| *pkg == ctx.package && stems.contains(&ctx.stem.as_str()));
    if !liveness_ok && code.contains(".set_up(") {
        emit(
            "watchdog-set-up",
            "direct node-liveness flip; only the watchdog and FaultPlan modules may \
             call set_up (transitions must carry NodeDown/NodeUp traces)"
                .to_string(),
        );
    }

    if ctx.package == "gage-core" && has_float_eq(code) {
        emit(
            "float-eq",
            "exact float equality in resource/credit math; compare with a tolerance".to_string(),
        );
    }
}

// ------------------------------------------------------------ line analysis

/// Strips comments and string-literal *contents* (quotes are kept so tokens
/// stay separated), tracking block comments across lines.
fn strip_lines(raw: &[&str]) -> Vec<String> {
    let mut in_block = 0usize;
    raw.iter().map(|l| strip_line(l, &mut in_block)).collect()
}

fn strip_line(line: &str, in_block: &mut usize) -> String {
    let b = line.as_bytes();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    while i < b.len() {
        if *in_block > 0 {
            if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                *in_block -= 1;
                i += 2;
            } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                *in_block += 1;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => break, // line comment
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                *in_block += 1;
                i += 2;
            }
            b'"' => {
                out.push('"');
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' {
                        i += 2;
                        out.push(' ');
                    } else if b[i] == b'"' {
                        out.push('"');
                        i += 1;
                        break;
                    } else {
                        out.push(' ');
                        i += 1;
                    }
                }
            }
            b'\'' => {
                // Char literal ('x', '\n', '\'') vs lifetime ('a).
                let rest = &b[i + 1..];
                let lit_len = if rest.first() == Some(&b'\\') {
                    rest.iter().skip(1).position(|&c| c == b'\'').map(|p| p + 3)
                } else if rest.len() >= 2 && rest[1] == b'\'' {
                    Some(3)
                } else {
                    None
                };
                match lit_len {
                    Some(n) => {
                        out.push('\'');
                        for _ in 0..n.saturating_sub(2) {
                            out.push(' ');
                        }
                        out.push('\'');
                        i += n;
                    }
                    None => {
                        out.push('\'');
                        i += 1;
                    }
                }
            }
            c => {
                out.push(c as char);
                i += 1;
            }
        }
    }
    out
}

fn is_ident(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// True if `needle` occurs in `code` with non-identifier characters (or the
/// line boundary) on both sides.
fn has_word(code: &str, needle: &str) -> bool {
    let (c, n) = (code.as_bytes(), needle.as_bytes());
    let mut from = 0;
    while let Some(pos) = code[from..].find(needle) {
        let start = from + pos;
        let end = start + n.len();
        let left_ok = start == 0 || !is_ident(c[start - 1]);
        let right_ok = end == c.len() || !is_ident(c[end]);
        if left_ok && right_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

/// Detects `ident[123]`-style literal indexing.
fn has_literal_index(code: &str) -> bool {
    let b = code.as_bytes();
    for i in 1..b.len() {
        if b[i] != b'[' {
            continue;
        }
        let prev = b[i - 1];
        if !(is_ident(prev) || prev == b']' || prev == b')') {
            continue;
        }
        let mut j = i + 1;
        let mut digits = 0;
        while j < b.len() && b[j].is_ascii_digit() {
            digits += 1;
            j += 1;
        }
        if digits > 0 && j < b.len() && b[j] == b']' {
            return true;
        }
    }
    false
}

/// Detects a wildcard match arm: `=>` whose pattern, after trimming, is a
/// lone `_` token (`_ =>`, `_=>`). Bindings like `Some(_) =>` or named
/// catch-alls like `other =>` do not count — only the bare wildcard that
/// swallows unhandled `TraceKind` variants.
fn has_wildcard_arm(code: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find("=>") {
        let at = from + pos;
        let before = code[..at].trim_end();
        if let Some(head) = before.strip_suffix('_') {
            let prev = head.as_bytes().last().copied();
            if prev.is_none_or(|c| !is_ident(c)) {
                return true;
            }
        }
        from = at + 2;
    }
    false
}

/// Detects `==`/`!=` with a float literal or a known float field adjacent.
fn has_float_eq(code: &str) -> bool {
    let b = code.as_bytes();
    let mut i = 0;
    while i + 1 < b.len() {
        let op = (b[i] == b'=' || b[i] == b'!') && b[i + 1] == b'=';
        // Skip `==` inside `<=`, `>=` (different first byte), `=>`, `===`.
        let triple = i + 2 < b.len() && b[i + 2] == b'=';
        if !op || triple || (i > 0 && b[i - 1] == b'=') {
            i += 1;
            continue;
        }
        let left = token_left(code, i);
        let right = token_right(code, i + 2);
        if is_float_token(&left) || is_float_token(&right) {
            return true;
        }
        i += 2;
    }
    false
}

fn token_left(code: &str, op_start: usize) -> String {
    let b = code.as_bytes();
    let mut j = op_start;
    while j > 0 && b[j - 1] == b' ' {
        j -= 1;
    }
    let end = j;
    while j > 0 && (is_ident(b[j - 1]) || b[j - 1] == b'.') {
        j -= 1;
    }
    code[j..end].to_string()
}

fn token_right(code: &str, after_op: usize) -> String {
    let b = code.as_bytes();
    let mut j = after_op;
    while j < b.len() && b[j] == b' ' {
        j += 1;
    }
    let start = j;
    if j < b.len() && b[j] == b'-' {
        j += 1;
    }
    while j < b.len() && (is_ident(b[j]) || b[j] == b'.') {
        j += 1;
    }
    code[start..j].to_string()
}

fn is_float_token(tok: &str) -> bool {
    let tok = tok.strip_prefix('-').unwrap_or(tok);
    if tok.is_empty() {
        return false;
    }
    // A float literal: digits, exactly one dot, optional f32/f64 suffix.
    let lit = tok.trim_end_matches("f64").trim_end_matches("f32");
    let is_literal = lit.as_bytes()[0].is_ascii_digit()
        && lit.bytes().filter(|&c| c == b'.').count() == 1
        && lit
            .bytes()
            .all(|c| c.is_ascii_digit() || c == b'.' || c == b'_');
    if is_literal {
        return true;
    }
    // A known float-carrying field access (`self.balance`, `v.cpu_us`, …).
    FLOAT_FIELDS.iter().any(|f| {
        tok.ends_with(f) && {
            let prefix_len = tok.len() - f.len();
            prefix_len == 0 || {
                let prev = tok.as_bytes()[prefix_len - 1];
                prev == b'.' || prev == b'_'
            }
        }
    })
}

fn parse_allows(raw: &str, marker: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = raw[from..].find(marker) {
        let start = from + pos + marker.len();
        if let Some(close) = raw[start..].find(')') {
            for rule in raw[start..start + close].split(',') {
                out.push(rule.trim().to_string());
            }
            from = start + close;
        } else {
            break;
        }
    }
    out
}

/// Marks lines that belong to `#[cfg(test)]`-gated blocks.
fn test_block_mask(code_lines: &[String]) -> Vec<bool> {
    let n = code_lines.len();
    let mut mask = vec![false; n];
    let mut i = 0;
    while i < n {
        if !code_lines[i].contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        // Find the block the attribute gates; give up after a few lines if
        // no brace appears (attribute on a braceless item).
        let mut j = i;
        let mut depth: i64 = 0;
        let mut started = false;
        while j < n {
            for c in code_lines[j].bytes() {
                match c {
                    b'{' => {
                        depth += 1;
                        started = true;
                    }
                    b'}' => depth -= 1,
                    _ => {}
                }
            }
            mask[j] = true;
            if started && depth <= 0 {
                break;
            }
            if !started && j > i + 3 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strip1(line: &str) -> String {
        let mut blk = 0;
        strip_line(line, &mut blk)
    }

    #[test]
    fn stripping_removes_comments_and_string_contents() {
        assert_eq!(strip1("let x = 1; // HashMap here"), "let x = 1; ");
        assert_eq!(strip1(r#"let s = "HashMap";"#), r#"let s = "       ";"#);
        assert_eq!(strip1("a /* HashMap */ b"), "a  b");
        assert_eq!(strip1("if c == '\"' { }"), "if c == ' ' { }");
    }

    #[test]
    fn block_comments_span_lines() {
        let lines = ["start /* HashMap", "still HashMap", "done */ tail"];
        let stripped = strip_lines(&lines);
        assert_eq!(stripped[0], "start ");
        assert_eq!(stripped[1], "");
        assert_eq!(stripped[2], " tail");
    }

    #[test]
    fn word_boundaries_respected() {
        assert!(has_word("use std::collections::HashMap;", "HashMap"));
        assert!(!has_word("let my_hashmap_like = 1;", "HashMap"));
        assert!(!has_word("eprintln!(\"x\")", "println!"));
        assert!(has_word("eprintln!(\"x\")", "eprintln!"));
        assert!(has_word("let r = rand::random();", "rand::random"));
    }

    #[test]
    fn literal_index_detection() {
        assert!(has_literal_index("let x = data[4];"));
        assert!(has_literal_index("w[0] + w[1]"));
        assert!(!has_literal_index("let a = [0u8; 16];"));
        assert!(!has_literal_index("map[&key]"));
        assert!(!has_literal_index("v[i]"));
    }

    #[test]
    fn float_eq_detection() {
        assert!(has_float_eq("if x == 0.0 {"));
        assert!(has_float_eq("if 1.5f64 != y {"));
        assert!(has_float_eq("a.cpu_us == b.cpu_us"));
        assert!(has_float_eq("self.balance != other.balance"));
        assert!(!has_float_eq("if n == 0 {"));
        assert!(!has_float_eq("x <= 0.0"));
        assert!(!has_float_eq(
            "a.partial_cmp(&0.0) != Some(Ordering::Greater)"
        ));
        assert!(!has_float_eq("let f = |a, b| a == b;"));
    }

    #[test]
    fn allow_parsing() {
        assert_eq!(
            parse_allows("x // lint:allow(no-print)", "lint:allow("),
            vec!["no-print"]
        );
        assert_eq!(
            parse_allows("x // lint:allow(a, b)", "lint:allow("),
            vec!["a", "b"]
        );
        assert!(parse_allows("x // lint:allow-file(a)", "lint:allow(").is_empty());
    }

    #[test]
    fn test_mask_covers_cfg_test_blocks() {
        let lines: Vec<String> = [
            "fn real() {}",
            "#[cfg(test)]",
            "mod tests {",
            "    fn t() { x.unwrap(); }",
            "}",
            "fn after() {}",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mask = test_block_mask(&lines);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn manifest_version_extraction() {
        let mut findings = Vec::new();
        let mut lits = Vec::new();
        let toml = r#"
[package]
name = "demo"

[dependencies]
good = { workspace = true }
local = { path = "../x" }
pinned = "1.2"
wild = "*"
inline = { version = "0.3", features = ["a"] }
"#;
        lint_manifest(toml, "Cargo.toml", &mut findings, &mut lits);
        let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["dep-version"; 3]);
        assert!(findings[1].message.contains("wildcard"));
        assert_eq!(lits.len(), 2, "pinned + inline recorded: {lits:?}");
    }
}
