//! `gage-lint` — a dependency-free static analyzer for the Gage workspace.
//!
//! The paper's guarantees rest on properties no compiler checks: the
//! simulator must be *deterministic* (same seed → same Table 1), the
//! splice/scheduler *hot path* must never panic mid-connection, and the
//! QoS *accounting math* must not silently compare floats for equality.
//! v2 enforces them as a token-stream analyzer, not a line scanner: every
//! source file is lexed ([`lexer`]) and parsed into items ([`parse`]), the
//! packages are assembled into a workspace model with a cross-file symbol
//! view ([`model`]), and the rules ([`rules`]) run against tokens and
//! items. Comments, string literals and `#[cfg(test)]` regions are
//! invisible to every rule by construction — the false-positive class the
//! v1 regex scanner spent half its code fighting doesn't exist here.
//!
//! # Per-file rules
//!
//! | rule | scope | forbids |
//! |---|---|---|
//! | `determinism-clock` | gage-des, gage-core, gage-cluster, gage-workload, gage-collections, gage-obs | `Instant`, `SystemTime` (wall clocks in simulated time) |
//! | `determinism-rng` | same | `thread_rng`, `rand::random` (unseeded entropy) |
//! | `determinism-hash-order` | same | `HashMap`, `HashSet` (iteration order varies per process) |
//! | `hot-path-panic` | gage-core::{scheduler,queue,classify,conn_table,node}, gage-net::{splice,tcp,packet} | `.unwrap()`, `.expect(`, `panic!`, `todo!`, `unimplemented!` |
//! | `hot-path-index` | same | indexing by integer literal (`data[4]`) |
//! | `hot-path-btree` | gage-core::conn_table, gage-des::event, gage-cluster::sim | `BTreeMap`, `BTreeSet` (O(log n) walk on per-packet state; use `gage_collections::DetMap`/`Slab`) |
//! | `no-print` | all library code | `println!`, `eprintln!`, `dbg!` |
//! | `obs-no-adhoc-print` | gage-core::scheduler, gage-cluster::sim, gage-net::splice, gage-obs | `print!`, `eprint!`, `stdout()`, `stderr()` (instrumented modules report through `Tracer`/`Registry`) |
//! | `crate-attrs` | every lib crate | missing `#![forbid(unsafe_code)]` / `#![warn(missing_docs)]` |
//! | `float-eq` | gage-core | `==`/`!=` on float literals or resource/credit fields |
//! | `watchdog-set-up` | everywhere except gage-core::node, gage-cluster::{sim,faults} | `.set_up(` (node-liveness flips outside the watchdog/FaultPlan skip hysteresis and the NodeDown/NodeUp trace) |
//! | `trace-kind-exhaustive` | gage-obs::spans | wildcard `_ =>` match arms (the span reconstructor must handle every `TraceKind` variant explicitly so new kinds fail to compile, not silently vanish from timelines) |
//! | `dep-version` | every `Cargo.toml` | wildcard versions, literal versions outside `[workspace.dependencies]`, duplicated versions |
//!
//! # Cross-file analyses
//!
//! | rule | catches |
//! |---|---|
//! | `lane-shared-state` | interior mutability, statics and TLS reachable from the lane roots (`ClusterSim`, `EventQueue`, `RequestScheduler`) via the struct graph — what would break deterministic parallel lanes (ROADMAP item 2) |
//! | `rng-stream-discipline` | `SimRng::seed_from` without a named `.split("stream")` derivation outside gage-des; stream labels aliased across two modules |
//! | `trace-kind-coverage` | `TraceKind` variants with no `TraceEvent` emit site or no reconstructor consumer arm |
//! | `fault-kind-coverage` | `FaultEvent` variants with no apply site outside the `FaultPlan` builders, or no `TraceKind` variant carrying the fault into the causal record |
//! | `panic-reachability` | `unwrap`/`expect`/`panic!`-class constructs and literal indexing in callees reachable from the hot-path entry points (`run_cycle_into`, splice remap, `EventQueue::{schedule,pop}`) |
//!
//! # Meta-rules
//!
//! | rule | catches |
//! |---|---|
//! | `unused-allow` | escape comments whose rule no longer fires there, and escapes naming unknown rules |
//! | `stale-baseline` | `lint-baseline.json` entries matching no current finding |
//!
//! Test code (`#[cfg(test)]` items), binaries (`src/bin/`, `main.rs`),
//! comments and string literals are exempt from source rules. Any line can
//! opt out with a trailing `lint:allow` comment naming the rule(s); a file
//! can opt out of a rule with a `lint:allow-file` comment in its first ten
//! lines. Both escapes are themselves audited: one that stops suppressing
//! anything becomes an `unused-allow` finding. Accepted findings live in
//! `lint-baseline.json` at the lint root ([`baseline`]), each entry with a
//! recorded reason; entries that stop matching become `stale-baseline`
//! findings, so the debt ledger only shrinks under review. Run as
//! `cargo run -p gage-lint` (`--json` for the `gage-lint-v2` report,
//! `--sarif` for CI annotation upload) or let the `workspace_clean` test
//! gate tier-1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::io;
use std::path::Path;

pub mod baseline;
pub mod lexer;
pub mod model;
pub mod parse;
pub mod report;
pub mod rules;

pub use baseline::Baseline;

/// One lint finding, anchored to a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier (see the crate docs for the table).
    pub rule: &'static str,
    /// Path relative to the linted root, `/`-separated.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column (in characters) of the offending token.
    pub col: usize,
    /// Human-readable explanation.
    pub message: String,
    /// The trimmed source line the finding points at.
    pub snippet: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{} [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Lints the workspace rooted at `root` and returns every raw finding
/// (no baseline applied), sorted by `(file, line, col, rule)`.
///
/// # Errors
///
/// Propagates filesystem errors; fails when `root` contains no
/// `Cargo.toml` at all (a mistyped root must not report success).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let ws = model::load(root)?;
    let mut sink = rules::Sink::default();
    for krate in &ws.crates {
        rules::tokens::run(krate, &mut sink);
    }
    rules::manifest::run(&ws, &mut sink);
    rules::lane::run(&ws, &mut sink);
    rules::rng::run(&ws, &mut sink);
    rules::trace::run(&ws, &mut sink);
    rules::fault::run(&ws, &mut sink);
    rules::panics::run(&ws, &mut sink);
    // Meta-rule last: it audits what the sink recorded above.
    rules::allows::run(&ws, &mut sink);
    let mut findings = sink.findings;
    findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(findings)
}

/// Lints the workspace and applies `lint-baseline.json` from `root` when
/// present. Returns `(findings, suppressed)` where `findings` includes any
/// `stale-baseline` entries and `suppressed` counts baselined findings.
///
/// # Errors
///
/// As [`lint_workspace`]; additionally fails when a baseline file exists
/// but is malformed (a broken baseline must not silently un-suppress).
pub fn lint_workspace_baselined(root: &Path) -> io::Result<(Vec<Finding>, usize)> {
    let findings = lint_workspace(root)?;
    match Baseline::load(root)? {
        Some(b) => Ok(b.apply(findings)),
        None => Ok((findings, 0)),
    }
}

/// Renders findings as the `gage-lint-v2` JSON report (see [`report`]).
#[must_use]
pub fn report_json(findings: &[Finding]) -> String {
    report::to_json(findings)
}

/// Renders findings as a SARIF 2.1.0 log (see [`report`]).
#[must_use]
pub fn report_sarif(findings: &[Finding]) -> String {
    report::to_sarif(findings)
}
