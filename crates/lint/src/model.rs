//! The workspace model: crate → file → item graph with cross-file indexes.
//!
//! [`load`] walks every `Cargo.toml` under the lint root, lexes and parses
//! each package's `src/` tree, and captures the `lint:allow` escapes from
//! the raw text (allows live in comments, which the lexer consumes). The
//! cross-file analyses — shared-state reachability, RNG stream discipline,
//! trace coverage, panic reachability — all run against this model rather
//! than re-reading files.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{self, Tok};
use crate::parse::{self, Item};

/// The line-allow marker, spelled in two halves so the lint's own sources
/// never register as escapes when the workspace lints itself.
pub const LINE_MARKER: &str = concat!("lint:", "allow(");
/// The file-allow marker (same two-half spelling, same reason).
pub const FILE_MARKER: &str = concat!("lint:", "allow-file(");

/// Directory names never descended into.
pub const SKIP_DIRS: &[&str] = &[
    "target",
    "vendor",
    "fixtures",
    ".git",
    ".claude",
    "related",
    "node_modules",
];

/// One source file, fully lexed and parsed.
#[derive(Debug)]
pub struct FileModel {
    /// Path relative to the lint root, with `/` separators.
    pub rel: String,
    /// File stem (`scheduler` for `src/scheduler.rs`).
    pub stem: String,
    /// Binary source (`src/bin/`, `main.rs`): print rules don't apply.
    pub is_bin: bool,
    /// Whether this is the crate's `src/lib.rs`.
    pub is_lib_root: bool,
    /// Full source text.
    pub src: String,
    /// Raw lines (for snippets and allow parsing).
    pub lines: Vec<String>,
    /// Token stream.
    pub toks: Vec<Tok>,
    /// Recovered items.
    pub items: Vec<Item>,
    /// Per-token `#[cfg(test)]` mask.
    pub test_mask: Vec<bool>,
    /// Line-level `lint:allow` escapes: line → allowed rules.
    pub line_allows: BTreeMap<usize, Vec<String>>,
    /// File-level `lint:allow-file` escapes from the first ten lines.
    pub file_allows: Vec<String>,
}

impl FileModel {
    /// The trimmed source line (1-based), for finding snippets.
    pub fn snippet(&self, line: usize) -> String {
        self.lines
            .get(line.saturating_sub(1))
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }
}

/// One workspace package.
#[derive(Debug)]
pub struct CrateModel {
    /// Package name from `[package] name = …`.
    pub package: String,
    /// Manifest path relative to the lint root.
    pub manifest_rel: String,
    /// Raw manifest text (for the manifest rules).
    pub manifest_text: String,
    /// Names of `[dependencies]` this package declares (workspace-internal
    /// edges are resolved against other packages in the model).
    pub deps: Vec<String>,
    /// All `.rs` files under the package's `src/`, sorted by path.
    pub files: Vec<FileModel>,
}

/// The whole linted tree.
#[derive(Debug)]
pub struct Workspace {
    /// Packages, sorted by manifest path.
    pub crates: Vec<CrateModel>,
    /// Manifests with no `[package]` section (virtual workspace roots),
    /// kept for the manifest rules: (rel path, text).
    pub virtual_manifests: Vec<(String, String)>,
}

impl Workspace {
    /// Package names reachable from `package` through workspace-internal
    /// `[dependencies]` edges, including `package` itself.
    pub fn dep_closure(&self, package: &str) -> BTreeSet<String> {
        let by_name: BTreeMap<&str, &CrateModel> = self
            .crates
            .iter()
            .map(|c| (c.package.as_str(), c))
            .collect();
        let mut seen = BTreeSet::new();
        let mut stack = vec![package.to_string()];
        while let Some(p) = stack.pop() {
            if !seen.insert(p.clone()) {
                continue;
            }
            if let Some(c) = by_name.get(p.as_str()) {
                for d in &c.deps {
                    if by_name.contains_key(d.as_str()) && !seen.contains(d) {
                        stack.push(d.clone());
                    }
                }
            }
        }
        seen
    }
}

/// Loads the workspace model rooted at `root`.
///
/// # Errors
///
/// Propagates filesystem errors; fails with `NotFound` when no `Cargo.toml`
/// exists under `root` (a mistyped root would otherwise lint nothing and
/// report success).
pub fn load(root: &Path) -> io::Result<Workspace> {
    let mut manifests = Vec::new();
    find_manifests(root, &mut manifests)?;
    if manifests.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no Cargo.toml found under {}", root.display()),
        ));
    }
    let mut crates = Vec::new();
    let mut virtual_manifests = Vec::new();
    for manifest in manifests {
        let Ok(text) = fs::read_to_string(&manifest) else {
            continue;
        };
        let rel_manifest = rel(root, &manifest);
        let Some(package) = package_name(&text) else {
            virtual_manifests.push((rel_manifest, text));
            continue;
        };
        let deps = dependency_names(&text);
        let mut files = Vec::new();
        if let Some(dir) = manifest.parent() {
            let src = dir.join("src");
            if src.is_dir() {
                let mut paths = Vec::new();
                collect_rs(&src, &mut paths)?;
                paths.sort();
                for path in paths {
                    let Ok(text) = fs::read_to_string(&path) else {
                        continue;
                    };
                    files.push(load_file(root, &path, text));
                }
            }
        }
        crates.push(CrateModel {
            package,
            manifest_rel: rel_manifest,
            manifest_text: text,
            deps,
            files,
        });
    }
    Ok(Workspace {
        crates,
        virtual_manifests,
    })
}

fn load_file(root: &Path, path: &Path, src: String) -> FileModel {
    let rel_path = rel(root, path);
    let is_bin = rel_path.contains("/bin/") || rel_path.ends_with("main.rs");
    let is_lib_root = path.ends_with("src/lib.rs");
    let stem = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    let lines: Vec<String> = src.lines().map(str::to_string).collect();
    let toks = lexer::lex(&src);
    let parsed = parse::parse_items(&src, &toks);

    let mut line_allows = BTreeMap::new();
    for (idx, l) in lines.iter().enumerate() {
        let allows = parse_allows(l, LINE_MARKER);
        if !allows.is_empty() {
            line_allows.insert(idx + 1, allows);
        }
    }
    let file_allows: Vec<String> = lines
        .iter()
        .take(10)
        .flat_map(|l| parse_allows(l, FILE_MARKER))
        .collect();

    FileModel {
        rel: rel_path,
        stem,
        is_bin,
        is_lib_root,
        lines,
        toks,
        items: parsed.items,
        test_mask: parsed.test_mask,
        line_allows,
        file_allows,
        src,
    }
}

/// Parses the allow escapes ([`LINE_MARKER`] / [`FILE_MARKER`], each
/// followed by comma-separated rule names and a closing paren) out of one
/// raw line. Escapes live in comments, so the token stream never sees them.
pub fn parse_allows(raw: &str, marker: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = raw[from..].find(marker) {
        let start = from + pos + marker.len();
        if let Some(close) = raw[start..].find(')') {
            for rule in raw[start..start + close].split(',') {
                out.push(rule.trim().to_string());
            }
            from = start + close;
        } else {
            break;
        }
    }
    out
}

fn rel(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

fn find_manifests(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let manifest = dir.join("Cargo.toml");
    if manifest.is_file() {
        out.push(manifest);
    }
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return Ok(()),
    };
    let mut subdirs: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| !SKIP_DIRS.contains(&n) && !n.starts_with('.'))
        })
        .collect();
    subdirs.sort();
    for sub in subdirs {
        find_manifests(&sub, out)?;
    }
    Ok(())
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)?.flatten() {
        let p = entry.path();
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_package = t == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = t.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    return Some(rest.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// Dependency names from every `[…dependencies…]` table in the manifest.
fn dependency_names(manifest: &str) -> Vec<String> {
    let mut deps = Vec::new();
    let mut in_deps = false;
    for line in manifest.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            let section = t.trim_matches(['[', ']']);
            in_deps = section.ends_with("dependencies");
            continue;
        }
        if !in_deps || t.is_empty() || t.starts_with('#') {
            continue;
        }
        if let Some((dep, _)) = t.split_once('=') {
            let name = dep.trim().trim_matches('"');
            // `gage-des.workspace = true` spells the dep as `gage-des.workspace`.
            let name = name.split('.').next().unwrap_or(name);
            if !name.is_empty() {
                deps.push(name.to_string());
            }
        }
    }
    deps.sort();
    deps.dedup();
    deps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_parsing() {
        assert_eq!(
            parse_allows(&format!("x // {LINE_MARKER}no-print)"), LINE_MARKER),
            vec!["no-print"]
        );
        assert_eq!(
            parse_allows(&format!("x // {LINE_MARKER}a, b)"), LINE_MARKER),
            vec!["a", "b"]
        );
        assert!(parse_allows(&format!("x // {FILE_MARKER}a)"), LINE_MARKER).is_empty());
    }

    #[test]
    fn dependency_name_extraction() {
        let toml = r#"
[package]
name = "demo"

[dependencies]
gage-des = { workspace = true }
gage-core.workspace = true
rand = { path = "../vendor/rand" }

[dev-dependencies]
gage-json = { workspace = true }
"#;
        let deps = dependency_names(toml);
        assert_eq!(deps, vec!["gage-core", "gage-des", "gage-json", "rand"]);
    }

    #[test]
    fn package_name_extraction() {
        assert_eq!(
            package_name("[package]\nname = \"gage-core\"\n"),
            Some("gage-core".to_string())
        );
        assert_eq!(package_name("[workspace]\nmembers = []\n"), None);
    }
}
