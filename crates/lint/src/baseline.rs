//! The finding baseline: `lint-baseline.json` at the lint root.
//!
//! A baseline entry acknowledges one class of finding as known-and-accepted
//! (with a recorded reason) without turning the rule off for anyone else.
//! Entries match on `(rule, file, contains)`, where `contains` is a
//! substring of the finding message — tight enough to pin one finding,
//! loose enough to survive line drift. Entries that stop matching become
//! `stale-baseline` findings, so the file can only shrink by someone
//! looking at it.
//!
//! The file is parsed with the hand-rolled reader below; the lint crate is
//! deliberately dependency-free (it has to be buildable before anything
//! else in the workspace is).

use std::fs;
use std::io;
use std::path::Path;

use crate::Finding;

/// Schema tag the baseline file must carry.
pub const BASELINE_SCHEMA: &str = "gage-lint-baseline-v1";
/// Default baseline file name, looked up at the lint root.
pub const BASELINE_FILE: &str = "lint-baseline.json";

/// One acknowledged finding class.
#[derive(Debug, Clone)]
pub struct BaselineEntry {
    /// Rule id the entry suppresses.
    pub rule: String,
    /// Exact finding file (lint-root-relative, `/` separators).
    pub file: String,
    /// Substring the finding message must contain (empty = any).
    pub contains: String,
    /// Why this finding is accepted. Required: an unexplained suppression
    /// is indistinguishable from a swept-under-the-rug bug.
    pub reason: String,
}

/// A parsed baseline file.
#[derive(Debug, Default)]
pub struct Baseline {
    /// Entries in file order.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Loads `lint-baseline.json` from `root`; `Ok(None)` when absent.
    ///
    /// # Errors
    ///
    /// Fails when the file exists but cannot be read or parsed — a
    /// malformed baseline must fail loudly, not silently un-suppress.
    pub fn load(root: &Path) -> io::Result<Option<Baseline>> {
        let path = root.join(BASELINE_FILE);
        if !path.is_file() {
            return Ok(None);
        }
        let text = fs::read_to_string(&path)?;
        parse(&text).map(Some).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("{BASELINE_FILE}: {e}"))
        })
    }

    /// Splits `findings` into (kept, suppressed-count) and appends a
    /// `stale-baseline` finding for every entry that matched nothing.
    pub fn apply(&self, findings: Vec<Finding>) -> (Vec<Finding>, usize) {
        let mut used = vec![false; self.entries.len()];
        let mut kept = Vec::new();
        let mut suppressed = 0usize;
        for f in findings {
            let hit = self.entries.iter().enumerate().find(|(_, e)| {
                e.rule == f.rule
                    && e.file == f.file
                    && (e.contains.is_empty() || f.message.contains(&e.contains))
            });
            if let Some((idx, _)) = hit {
                used[idx] = true;
                suppressed += 1;
            } else {
                kept.push(f);
            }
        }
        for (idx, entry) in self.entries.iter().enumerate() {
            if !used[idx] {
                kept.push(Finding {
                    rule: "stale-baseline",
                    file: BASELINE_FILE.to_string(),
                    line: idx + 1,
                    col: 1,
                    message: format!(
                        "baseline entry #{idx} (rule `{}` in {}) no longer matches any \
                         finding; delete it — the debt it acknowledged is paid",
                        entry.rule, entry.file
                    ),
                    snippet: entry.contains.clone(),
                });
            }
        }
        kept.sort_by(|a, b| {
            (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
        });
        (kept, suppressed)
    }
}

/// Parses the baseline document.
///
/// # Errors
///
/// Returns a message describing the first structural problem: bad JSON,
/// wrong schema tag, or an entry missing `rule`/`file`/`reason`.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let val = json::parse(text)?;
    let obj = val.as_obj().ok_or("top level must be an object")?;
    match json::get(obj, "schema").and_then(json::Val::as_str) {
        Some(BASELINE_SCHEMA) => {}
        Some(other) => return Err(format!("unknown schema \"{other}\"")),
        None => return Err("missing \"schema\"".to_string()),
    }
    let entries = json::get(obj, "entries")
        .and_then(json::Val::as_arr)
        .ok_or("missing \"entries\" array")?;
    let mut out = Vec::new();
    for (i, e) in entries.iter().enumerate() {
        let obj = e
            .as_obj()
            .ok_or_else(|| format!("entry #{i} is not an object"))?;
        let field = |k: &str| -> Result<String, String> {
            json::get(obj, k)
                .and_then(json::Val::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("entry #{i} is missing \"{k}\""))
        };
        let entry = BaselineEntry {
            rule: field("rule")?,
            file: field("file")?,
            contains: json::get(obj, "contains")
                .and_then(json::Val::as_str)
                .unwrap_or_default()
                .to_string(),
            reason: field("reason")?,
        };
        if entry.reason.trim().is_empty() {
            return Err(format!("entry #{i} has an empty \"reason\""));
        }
        out.push(entry);
    }
    Ok(Baseline { entries: out })
}

/// A minimal JSON reader — just enough for the baseline document.
mod json {
    /// A parsed JSON value.
    #[derive(Debug)]
    pub enum Val {
        /// String.
        Str(String),
        /// Number (unused by the baseline schema, parsed for completeness).
        Num(#[allow(dead_code)] f64),
        /// Boolean.
        Bool(#[allow(dead_code)] bool),
        /// Null.
        Null,
        /// Array.
        Arr(Vec<Val>),
        /// Object, preserving key order.
        Obj(Vec<(String, Val)>),
    }

    impl Val {
        /// The string payload, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Val::Str(s) => Some(s),
                _ => None,
            }
        }
        /// The array payload, if this is an array.
        pub fn as_arr(&self) -> Option<&[Val]> {
            match self {
                Val::Arr(a) => Some(a),
                _ => None,
            }
        }
        /// The object payload, if this is an object.
        pub fn as_obj(&self) -> Option<&[(String, Val)]> {
            match self {
                Val::Obj(o) => Some(o),
                _ => None,
            }
        }
    }

    /// First value for `key` in an object.
    pub fn get<'a>(obj: &'a [(String, Val)], key: &str) -> Option<&'a Val> {
        obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Parses one JSON document.
    ///
    /// # Errors
    ///
    /// Returns a position-stamped message on malformed input.
    pub fn parse(text: &str) -> Result<Val, String> {
        let b = text.as_bytes();
        let mut i = 0usize;
        let v = value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing content at byte {i}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && b[*i].is_ascii_whitespace() {
            *i += 1;
        }
    }

    fn value(b: &[u8], i: &mut usize) -> Result<Val, String> {
        skip_ws(b, i);
        match b.get(*i) {
            Some(b'{') => obj(b, i),
            Some(b'[') => arr(b, i),
            Some(b'"') => Ok(Val::Str(string(b, i)?)),
            Some(b't') => lit(b, i, "true", Val::Bool(true)),
            Some(b'f') => lit(b, i, "false", Val::Bool(false)),
            Some(b'n') => lit(b, i, "null", Val::Null),
            Some(_) => num(b, i),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn lit(b: &[u8], i: &mut usize, word: &str, v: Val) -> Result<Val, String> {
        if b[*i..].starts_with(word.as_bytes()) {
            *i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {i}", i = *i))
        }
    }

    fn num(b: &[u8], i: &mut usize) -> Result<Val, String> {
        let start = *i;
        while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *i += 1;
        }
        std::str::from_utf8(&b[start..*i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Val::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(b: &[u8], i: &mut usize) -> Result<String, String> {
        *i += 1; // opening quote
        let mut out = String::new();
        while *i < b.len() {
            match b[*i] {
                b'"' => {
                    *i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    *i += 1;
                    let esc = b.get(*i).ok_or("unterminated escape")?;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = b
                                .get(*i + 1..*i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            *i += 4;
                        }
                        _ => return Err(format!("bad escape at byte {i}", i = *i)),
                    }
                    *i += 1;
                }
                _ => {
                    // Copy the full UTF-8 sequence starting here.
                    let s =
                        std::str::from_utf8(&b[*i..]).map_err(|_| "invalid utf-8".to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    *i += c.len_utf8();
                }
            }
        }
        Err("unterminated string".to_string())
    }

    fn arr(b: &[u8], i: &mut usize) -> Result<Val, String> {
        *i += 1;
        let mut out = Vec::new();
        loop {
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(Val::Arr(out));
            }
            out.push(value(b, i)?);
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b']') => {}
                _ => return Err(format!("expected , or ] at byte {i}", i = *i)),
            }
        }
    }

    fn obj(b: &[u8], i: &mut usize) -> Result<Val, String> {
        *i += 1;
        let mut out = Vec::new();
        loop {
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(Val::Obj(out));
            }
            if b.get(*i) != Some(&b'"') {
                return Err(format!("expected key at byte {i}", i = *i));
            }
            let key = string(b, i)?;
            skip_ws(b, i);
            if b.get(*i) != Some(&b':') {
                return Err(format!("expected : at byte {i}", i = *i));
            }
            *i += 1;
            out.push((key, value(b, i)?));
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b'}') => {}
                _ => return Err(format!("expected , or }} at byte {i}", i = *i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(entries: &str) -> String {
        format!("{{\"schema\": \"{BASELINE_SCHEMA}\", \"entries\": [{entries}]}}")
    }

    #[test]
    fn parses_and_matches() {
        let b = parse(&doc("{\"rule\": \"float-eq\", \"file\": \"a.rs\", \
             \"contains\": \"tolerance\", \"reason\": \"legacy\"}"))
        .unwrap();
        let f = Finding {
            rule: "float-eq",
            file: "a.rs".to_string(),
            line: 3,
            col: 7,
            message: "compare with a tolerance".to_string(),
            snippet: String::new(),
        };
        let (kept, suppressed) = b.apply(vec![f]);
        assert_eq!(suppressed, 1);
        assert!(kept.is_empty());
    }

    #[test]
    fn stale_entry_becomes_finding() {
        let b = parse(&doc(
            "{\"rule\": \"no-print\", \"file\": \"gone.rs\", \"reason\": \"old\"}",
        ))
        .unwrap();
        let (kept, suppressed) = b.apply(Vec::new());
        assert_eq!(suppressed, 0);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].rule, "stale-baseline");
    }

    #[test]
    fn rejects_missing_reason() {
        assert!(parse(&doc("{\"rule\": \"x\", \"file\": \"y\"}")).is_err());
        assert!(parse(&doc(
            "{\"rule\": \"x\", \"file\": \"y\", \"reason\": \"  \"}"
        ))
        .is_err());
        assert!(parse("{\"schema\": \"wrong\", \"entries\": []}").is_err());
    }
}
