//! A Zipf(α) sampler over `{0, …, n-1}` via a precomputed inverse CDF.
//!
//! Implemented from scratch (binary search over cumulative weights) to keep
//! the dependency set small; exact for the table-based range sizes used here
//! (up to a few tens of thousands of items).

use rand::Rng;

/// Samples ranks with probability ∝ `1 / (rank+1)^alpha`.
///
/// ```rust
/// use gage_workload::zipf::Zipf;
/// use rand::SeedableRng;
/// let z = Zipf::new(100, 1.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let first = z.sample(&mut rng);
/// assert!(first < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` items with exponent `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `alpha` is negative/NaN.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(alpha >= 0.0, "alpha must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the sampler covers a single item.
    pub fn is_empty(&self) -> bool {
        false // constructor guarantees n > 0
    }

    /// Draws a rank in `[0, n)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // First index whose cumulative weight exceeds u.
        match self
            .cdf
            .binary_search_by(|w| w.partial_cmp(&u).expect("weights are finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            return 0.0;
        }
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(50, 1.2);
        let total: f64 = (0..50).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(z.pmf(99), 0.0);
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn rank_zero_dominates() {
        let z = Zipf::new(1000, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(10));
        assert!(z.pmf(10) > z.pmf(500));
    }

    #[test]
    fn empirical_frequencies_match_pmf() {
        let z = Zipf::new(20, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mut counts = [0u32; 20];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (r, &count) in counts.iter().enumerate() {
            let emp = f64::from(count) / n as f64;
            let exp = z.pmf(r);
            assert!(
                (emp - exp).abs() < 0.01,
                "rank {r}: empirical {emp:.4} vs pmf {exp:.4}"
            );
        }
    }

    #[test]
    fn single_item_always_zero() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
        assert_eq!(z.len(), 1);
        assert!(!z.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
