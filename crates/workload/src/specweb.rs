//! SPECWeb99-shaped request generation.
//!
//! Draws a directory by Zipf popularity, a class by the 35/50/14/1 % mix
//! and a file within the class by Zipf popularity — reproducing the
//! heavy-tailed response-size distribution of the benchmark's static GET
//! workload (the part the paper's trace exercises).

use rand::Rng;

use crate::fileset::{FileId, FileSet, CLASS_MIX, FILES_PER_CLASS};
use crate::zipf::Zipf;
use crate::{GeneratedRequest, RequestGenerator};

/// The SPECWeb99-shaped generator for one site.
///
/// ```rust
/// use gage_workload::{SpecWebGenerator, RequestGenerator};
/// use rand::SeedableRng;
///
/// let mut g = SpecWebGenerator::for_target_rate(400.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let r = g.next_request(&mut rng);
/// assert!(r.path.starts_with("/dir"));
/// assert!(r.size_bytes >= 102 && r.size_bytes <= 943_718);
/// ```
#[derive(Debug, Clone)]
pub struct SpecWebGenerator {
    fileset: FileSet,
    dir_zipf: Zipf,
    file_zipf: Zipf,
}

impl SpecWebGenerator {
    /// Builds a generator over an explicit file population.
    pub fn new(fileset: FileSet) -> Self {
        SpecWebGenerator {
            fileset,
            dir_zipf: Zipf::new(fileset.dir_count as usize, 1.0),
            file_zipf: Zipf::new(FILES_PER_CLASS as usize, 1.0),
        }
    }

    /// Builds a generator with the population SPECWeb99 prescribes for the
    /// given offered load.
    pub fn for_target_rate(ops_per_sec: f64) -> Self {
        SpecWebGenerator::new(FileSet::for_target_rate(ops_per_sec))
    }

    /// The underlying file population.
    pub fn fileset(&self) -> FileSet {
        self.fileset
    }

    fn sample_class<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for (c, p) in CLASS_MIX.iter().enumerate() {
            acc += p;
            if u < acc {
                return c as u32;
            }
        }
        (CLASS_MIX.len() - 1) as u32
    }

    /// Draws one file id.
    pub fn sample_file<R: Rng + ?Sized>(&self, rng: &mut R) -> FileId {
        FileId {
            dir: self.dir_zipf.sample(rng) as u32,
            class: Self::sample_class(rng),
            file: self.file_zipf.sample(rng) as u32,
        }
    }
}

impl RequestGenerator for SpecWebGenerator {
    fn next_request(&mut self, rng: &mut dyn rand::RngCore) -> GeneratedRequest {
        let id = self.sample_file(rng);
        GeneratedRequest {
            path: id.path(),
            size_bytes: id.size_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn class_mix_is_respected() {
        let g = SpecWebGenerator::for_target_rate(100.0);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let mut counts = [0u32; 4];
        for _ in 0..n {
            counts[g.sample_file(&mut rng).class as usize] += 1;
        }
        let fracs: Vec<f64> = counts.iter().map(|&c| f64::from(c) / n as f64).collect();
        for (i, expected) in CLASS_MIX.iter().enumerate() {
            assert!(
                (fracs[i] - expected).abs() < 0.01,
                "class {i}: {:.3} vs {expected}",
                fracs[i]
            );
        }
    }

    #[test]
    fn all_samples_in_population() {
        let g = SpecWebGenerator::for_target_rate(50.0);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            assert!(g.fileset().contains(g.sample_file(&mut rng)));
        }
    }

    #[test]
    fn size_distribution_is_heavy_tailed() {
        let mut g = SpecWebGenerator::for_target_rate(100.0);
        let mut rng = StdRng::seed_from_u64(5);
        let sizes: Vec<u64> = (0..20_000)
            .map(|_| g.next_request(&mut rng).size_bytes)
            .collect();
        let mean = sizes.iter().sum::<u64>() as f64 / sizes.len() as f64;
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        assert!(
            mean > 2.0 * median,
            "mean {mean:.0} should dwarf median {median:.0}"
        );
    }

    #[test]
    fn popular_directories_dominate() {
        let g = SpecWebGenerator::for_target_rate(500.0);
        let mut rng = StdRng::seed_from_u64(6);
        let n = 30_000;
        let mut dir0 = 0u32;
        for _ in 0..n {
            if g.sample_file(&mut rng).dir == 0 {
                dir0 += 1;
            }
        }
        let frac = f64::from(dir0) / n as f64;
        // Zipf(1) over 125 dirs gives rank 0 about 1/H(125) ≈ 18%.
        assert!(frac > 0.10, "dir0 frac {frac:.3}");
    }
}
