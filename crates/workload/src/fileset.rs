//! SPECWeb99-shaped file populations.
//!
//! SPECWeb99's static workload organizes each site's files into directories
//! of 36 files: four *classes* of nine files each. Class `c` file `f` has
//! size `(f+1) × 10^c × 0.1 KB`, i.e. class 0 spans 0.1–0.9 KB, class 1
//! 1–9 KB, class 2 10–90 KB and class 3 100–900 KB. Classes are accessed
//! with probabilities 35/50/14/1 % and directories/files with Zipf-like
//! popularity. This module reproduces that structure.

/// Files per class within one directory.
pub const FILES_PER_CLASS: u32 = 9;
/// Classes per directory.
pub const CLASS_COUNT: u32 = 4;
/// SPECWeb99 class access mix (class 0..=3).
pub const CLASS_MIX: [f64; 4] = [0.35, 0.50, 0.14, 0.01];

/// Identifies one file in a SPECWeb99-shaped population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileId {
    /// Directory index.
    pub dir: u32,
    /// Class 0–3.
    pub class: u32,
    /// File index within the class, 0–8.
    pub file: u32,
}

impl FileId {
    /// Size of this file in bytes.
    pub fn size_bytes(self) -> u64 {
        // (file+1) × 0.1 KB × 10^class, with 1 KB = 1024 B as SPECWeb does.
        let base = 1024.0 / 10.0; // 0.1 KB
        (f64::from(self.file + 1) * base * 10f64.powi(self.class as i32)).round() as u64
    }

    /// The URL path of this file, mirroring the SPECWeb99 layout.
    pub fn path(self) -> String {
        format!("/dir{:05}/class{}_{}", self.dir, self.class, self.file)
    }

    /// Parses a path produced by [`FileId::path`].
    pub fn parse_path(path: &str) -> Option<FileId> {
        let rest = path.strip_prefix("/dir")?;
        let (dir_s, file_part) = rest.split_once("/class")?;
        let (class_s, file_s) = file_part.split_once('_')?;
        let id = FileId {
            dir: dir_s.parse().ok()?,
            class: class_s.parse().ok()?,
            file: file_s.parse().ok()?,
        };
        (id.class < CLASS_COUNT && id.file < FILES_PER_CLASS).then_some(id)
    }
}

/// One site's file population: `dir_count` directories of 36 files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileSet {
    /// Number of directories.
    pub dir_count: u32,
}

impl FileSet {
    /// SPECWeb99 scales the directory count with the offered load:
    /// `dirs = 25 + (load in ops/sec) / 5`.
    pub fn for_target_rate(ops_per_sec: f64) -> Self {
        FileSet {
            dir_count: (25.0 + ops_per_sec / 5.0).ceil() as u32,
        }
    }

    /// Total number of files.
    pub fn file_count(&self) -> u64 {
        u64::from(self.dir_count) * u64::from(CLASS_COUNT * FILES_PER_CLASS)
    }

    /// Total bytes across all files.
    pub fn total_bytes(&self) -> u64 {
        let per_dir: u64 = (0..CLASS_COUNT)
            .flat_map(|c| {
                (0..FILES_PER_CLASS).map(move |f| {
                    FileId {
                        dir: 0,
                        class: c,
                        file: f,
                    }
                    .size_bytes()
                })
            })
            .sum();
        per_dir * u64::from(self.dir_count)
    }

    /// True if `id` belongs to this population.
    pub fn contains(&self, id: FileId) -> bool {
        id.dir < self.dir_count && id.class < CLASS_COUNT && id.file < FILES_PER_CLASS
    }
}

/// Mean response size implied by the class mix (bytes). Useful for network
/// capacity planning in the harnesses.
pub fn mean_response_bytes() -> f64 {
    // Mean file index is uniform-ish under SPECWeb's intra-class weights;
    // we approximate with the Zipf weights used by the generator, but the
    // simple mean over files is within a few percent and documented as such.
    let mut mean = 0.0;
    for (c, p) in CLASS_MIX.iter().enumerate() {
        let class_mean: f64 = (0..FILES_PER_CLASS)
            .map(|f| {
                FileId {
                    dir: 0,
                    class: c as u32,
                    file: f,
                }
                .size_bytes() as f64
            })
            .sum::<f64>()
            / f64::from(FILES_PER_CLASS);
        mean += p * class_mean;
    }
    mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_sizes_match_specweb() {
        let f = |class, file| {
            FileId {
                dir: 0,
                class,
                file,
            }
            .size_bytes()
        };
        assert_eq!(f(0, 0), 102); // 0.1 KB
        assert_eq!(f(0, 8), 922); // 0.9 KB
        assert_eq!(f(1, 0), 1_024); // 1 KB
        assert_eq!(f(2, 4), 51_200); // 50 KB
        assert_eq!(f(3, 8), 921_600); // 900 KB
    }

    #[test]
    fn path_round_trip() {
        let id = FileId {
            dir: 123,
            class: 2,
            file: 7,
        };
        assert_eq!(id.path(), "/dir00123/class2_7");
        assert_eq!(FileId::parse_path(&id.path()), Some(id));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(FileId::parse_path("/index.html"), None);
        assert_eq!(FileId::parse_path("/dir00001/class9_0"), None);
        assert_eq!(FileId::parse_path("/dir00001/class1_9"), None);
        assert_eq!(FileId::parse_path("/dirX/class1_1"), None);
    }

    #[test]
    fn fileset_scaling_rule() {
        let fs = FileSet::for_target_rate(400.0);
        assert_eq!(fs.dir_count, 105);
        assert_eq!(fs.file_count(), 105 * 36);
        assert!(fs.contains(FileId {
            dir: 104,
            class: 3,
            file: 8
        }));
        assert!(!fs.contains(FileId {
            dir: 105,
            class: 0,
            file: 0
        }));
    }

    #[test]
    fn class_mix_sums_to_one() {
        let s: f64 = CLASS_MIX.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_response_size_is_heavy_tailed() {
        let m = mean_response_bytes();
        // Dominated by class 1 (5 KB mean × 0.5) plus the class 2/3 tail:
        // roughly 14–16 KB.
        assert!(m > 10_000.0 && m < 20_000.0, "mean {m}");
    }

    #[test]
    fn total_bytes_counts_all_classes() {
        let fs = FileSet { dir_count: 1 };
        // Per directory: sum over classes of (1+..+9) × 0.1KB × 10^c
        // = 45 × 102.4 × (1 + 10 + 100 + 1000) ≈ 5.12 MB.
        let total = fs.total_bytes();
        assert!(total > 5_000_000 && total < 5_250_000, "total {total}");
    }
}
