//! Workload generation for the Gage reproduction.
//!
//! The paper evaluates with two workload types (§4): **synthetic** —
//! constant-rate requests for fixed-size files — and **realistic** — a trace
//! derived from SPECWeb99, replayed at a constant rate in the open-loop
//! style of Banga & Druschel ("Measuring the Capacity of a Web Server").
//!
//! SPECWeb99 itself is proprietary, so [`specweb`] provides a generator with
//! the benchmark's published *shape*: four file classes (0.1–0.9 KB, 1–9 KB,
//! 10–90 KB, 100–900 KB) with the 35/50/14/1 % class mix, Zipf-distributed
//! directory popularity and per-class file popularity. That heavy-tailed mix
//! is what exercises Gage's usage *prediction* error — exactly the effect
//! Figure 3's SPECWeb99 line measures.
//!
//! * [`zipf`] — a from-scratch Zipf sampler (inverse-CDF over a precomputed
//!   table),
//! * [`fileset`] — per-site SPECWeb99-shaped file populations,
//! * [`arrival`] — open-loop arrival processes (constant, Poisson, on-off),
//! * [`synthetic`] — the fixed-size synthetic workload,
//! * [`specweb`] — the SPECWeb99-shaped request generator,
//! * [`trace`] — timestamped request traces with JSON save/load.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod fileset;
pub mod specweb;
pub mod synthetic;
pub mod trace;
pub mod zipf;

pub use arrival::ArrivalProcess;
pub use specweb::SpecWebGenerator;
pub use synthetic::SyntheticGenerator;
pub use trace::{Trace, TraceEntry};

/// A generated request: what is fetched and how large the response will be.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratedRequest {
    /// Request path (e.g. `/dir0004/class1_3`).
    pub path: String,
    /// Response body size in bytes.
    pub size_bytes: u64,
}

/// A source of requests for one subscriber's site.
pub trait RequestGenerator {
    /// Draws the next request.
    fn next_request(&mut self, rng: &mut dyn rand::RngCore) -> GeneratedRequest;
}
