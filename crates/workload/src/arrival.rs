//! Open-loop arrival processes.
//!
//! The paper's clients issue requests at a *constant* rate regardless of
//! completions (the Banga–Druschel load-generation method), which is what
//! exposes overload behaviour. Poisson and on-off variants are provided for
//! the robustness experiments.

use rand::Rng;

/// How request arrivals are spaced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Exactly `rate` arrivals per second, evenly spaced (the paper's
    /// method).
    Constant {
        /// Arrivals per second.
        rate: f64,
    },
    /// Poisson arrivals with mean `rate` per second.
    Poisson {
        /// Mean arrivals per second.
        rate: f64,
    },
    /// Alternating bursts: `on_rate` arrivals/s for `on_secs`, then silence
    /// for `off_secs`.
    OnOff {
        /// Rate while on.
        on_rate: f64,
        /// Burst length in seconds.
        on_secs: f64,
        /// Gap length in seconds.
        off_secs: f64,
    },
}

impl ArrivalProcess {
    /// Long-run mean arrival rate (per second).
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Constant { rate } | ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::OnOff {
                on_rate,
                on_secs,
                off_secs,
            } => on_rate * on_secs / (on_secs + off_secs),
        }
    }

    /// Generates all arrival instants in `[0, horizon_secs)`, in seconds.
    ///
    /// Deterministic for `Constant` and `OnOff`; randomized for `Poisson`.
    pub fn arrivals<R: Rng + ?Sized>(&self, horizon_secs: f64, rng: &mut R) -> Vec<f64> {
        let mut out = Vec::new();
        match *self {
            ArrivalProcess::Constant { rate } => {
                if rate <= 0.0 {
                    return out;
                }
                // Index-based to avoid floating-point drift at boundaries.
                let n = (horizon_secs * rate).ceil() as u64;
                for i in 0..n {
                    let t = i as f64 / rate;
                    if t < horizon_secs {
                        out.push(t);
                    }
                }
            }
            ArrivalProcess::Poisson { rate } => {
                if rate <= 0.0 {
                    return out;
                }
                let mut t = 0.0;
                loop {
                    let u: f64 = rng.gen();
                    t += -(1.0 - u).ln() / rate;
                    if t >= horizon_secs {
                        break;
                    }
                    out.push(t);
                }
            }
            ArrivalProcess::OnOff {
                on_rate,
                on_secs,
                off_secs,
            } => {
                if on_rate <= 0.0 || on_secs <= 0.0 {
                    return out;
                }
                let period = on_secs + off_secs;
                let per_burst = (on_secs * on_rate).ceil() as u64;
                let mut cycle = 0u64;
                loop {
                    let cycle_start = cycle as f64 * period;
                    if cycle_start >= horizon_secs {
                        break;
                    }
                    for i in 0..per_burst {
                        let t = cycle_start + i as f64 / on_rate;
                        if t < (cycle_start + on_secs).min(horizon_secs)
                            && t - cycle_start < on_secs
                        {
                            out.push(t);
                        }
                    }
                    cycle += 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_rate_spacing() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = ArrivalProcess::Constant { rate: 100.0 }.arrivals(1.0, &mut rng);
        assert_eq!(a.len(), 100);
        assert!((a[1] - a[0] - 0.01).abs() < 1e-12);
        assert!(a.last().unwrap() < &1.0);
    }

    #[test]
    fn poisson_mean_count() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = ArrivalProcess::Poisson { rate: 200.0 }.arrivals(50.0, &mut rng);
        let n = a.len() as f64;
        assert!((n - 10_000.0).abs() < 400.0, "got {n} arrivals");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "sorted");
    }

    #[test]
    fn onoff_duty_cycle() {
        let mut rng = StdRng::seed_from_u64(0);
        let p = ArrivalProcess::OnOff {
            on_rate: 100.0,
            on_secs: 1.0,
            off_secs: 1.0,
        };
        let a = p.arrivals(4.0, &mut rng);
        assert_eq!(a.len(), 200, "two on-periods of 100");
        assert!((p.mean_rate() - 50.0).abs() < 1e-12);
        // No arrivals during off windows.
        assert!(a.iter().all(|&t| (t % 2.0) < 1.0 + 1e-9));
    }

    #[test]
    fn zero_rate_is_silent() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(ArrivalProcess::Constant { rate: 0.0 }
            .arrivals(10.0, &mut rng)
            .is_empty());
        assert!(ArrivalProcess::Poisson { rate: 0.0 }
            .arrivals(10.0, &mut rng)
            .is_empty());
    }

    #[test]
    fn mean_rates() {
        assert_eq!(ArrivalProcess::Constant { rate: 9.0 }.mean_rate(), 9.0);
        assert_eq!(ArrivalProcess::Poisson { rate: 3.0 }.mean_rate(), 3.0);
    }
}
