//! The paper's synthetic workload: every request fetches a fixed-size file.
//!
//! §4.1 uses "a constant synthetic workload with each request accessing a
//! file of the size of 6 KBytes".

use crate::{GeneratedRequest, RequestGenerator};

/// Default synthetic response size (the paper's 6 KB).
pub const DEFAULT_SIZE_BYTES: u64 = 6 * 1024;

/// Generates requests that rotate over `file_count` identical-size files.
///
/// ```rust
/// use gage_workload::synthetic::SyntheticGenerator;
/// use gage_workload::RequestGenerator;
/// use rand::SeedableRng;
///
/// let mut g = SyntheticGenerator::new(6144, 4);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let r = g.next_request(&mut rng);
/// assert_eq!(r.size_bytes, 6144);
/// assert_eq!(r.path, "/file0000.html");
/// assert_eq!(g.next_request(&mut rng).path, "/file0001.html");
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticGenerator {
    size_bytes: u64,
    file_count: u32,
    next: u32,
}

impl SyntheticGenerator {
    /// Creates a generator of `size_bytes` responses over `file_count`
    /// distinct paths (rotated round-robin so cache behaviour is uniform).
    ///
    /// # Panics
    ///
    /// Panics if `file_count` is zero.
    pub fn new(size_bytes: u64, file_count: u32) -> Self {
        assert!(file_count > 0, "need at least one file");
        SyntheticGenerator {
            size_bytes,
            file_count,
            next: 0,
        }
    }

    /// The paper's 6 KB single-file workload.
    pub fn paper_default() -> Self {
        SyntheticGenerator::new(DEFAULT_SIZE_BYTES, 1)
    }

    /// Response size of every request.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }
}

impl RequestGenerator for SyntheticGenerator {
    fn next_request(&mut self, _rng: &mut dyn rand::RngCore) -> GeneratedRequest {
        let i = self.next;
        self.next = (self.next + 1) % self.file_count;
        GeneratedRequest {
            path: format!("/file{i:04}.html"),
            size_bytes: self.size_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rotates_round_robin() {
        let mut g = SyntheticGenerator::new(100, 3);
        let mut rng = StdRng::seed_from_u64(0);
        let paths: Vec<String> = (0..6).map(|_| g.next_request(&mut rng).path).collect();
        assert_eq!(
            paths,
            vec![
                "/file0000.html",
                "/file0001.html",
                "/file0002.html",
                "/file0000.html",
                "/file0001.html",
                "/file0002.html"
            ]
        );
    }

    #[test]
    fn paper_default_is_6kb() {
        let mut g = SyntheticGenerator::paper_default();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(g.next_request(&mut rng).size_bytes, 6144);
        assert_eq!(g.size_bytes(), 6144);
    }

    #[test]
    #[should_panic(expected = "at least one file")]
    fn zero_files_rejected() {
        let _ = SyntheticGenerator::new(100, 0);
    }
}
