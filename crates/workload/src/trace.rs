//! Timestamped request traces with JSON persistence.
//!
//! The paper's clients "load the trace from a file and issue requests to
//! Gage at a constant rate". [`Trace::generate`] combines an arrival process
//! with a request generator to produce such a trace; [`Trace::save_json`] /
//! [`Trace::load_json`] persist it. Timestamps are integer microseconds so
//! traces round-trip bit-exactly through JSON.

use std::io::{Read, Write};

use rand::Rng;

use crate::arrival::ArrivalProcess;
use crate::{GeneratedRequest, RequestGenerator};

/// One timestamped request against one host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Issue time, microseconds from trace start.
    pub at_us: u64,
    /// Target host (classification key).
    pub host: String,
    /// Request path.
    pub path: String,
    /// Response size the server will produce, bytes.
    pub size_bytes: u64,
}

impl TraceEntry {
    /// Issue time in seconds.
    pub fn at_secs(&self) -> f64 {
        self.at_us as f64 / 1e6
    }
}

/// An ordered request trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    /// Entries sorted by `at_us`.
    pub entries: Vec<TraceEntry>,
}

impl Trace {
    /// Generates a trace for `host`: arrivals from `process` over
    /// `horizon_secs`, requests from `generator`.
    pub fn generate<G, R>(
        host: &str,
        process: ArrivalProcess,
        horizon_secs: f64,
        generator: &mut G,
        rng: &mut R,
    ) -> Self
    where
        G: RequestGenerator + ?Sized,
        R: Rng,
    {
        let entries = process
            .arrivals(horizon_secs, rng)
            .into_iter()
            .map(|at| {
                let GeneratedRequest { path, size_bytes } = generator.next_request(rng);
                TraceEntry {
                    at_us: (at * 1e6).round() as u64,
                    host: host.to_string(),
                    path,
                    size_bytes,
                }
            })
            .collect();
        Trace { entries }
    }

    /// Merges several traces into one, re-sorted by time (stable, so
    /// same-instant entries keep their per-trace order).
    pub fn merge(traces: impl IntoIterator<Item = Trace>) -> Self {
        let mut entries: Vec<TraceEntry> = traces.into_iter().flat_map(|t| t.entries).collect();
        entries.sort_by_key(|e| e.at_us);
        Trace { entries }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the trace has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Duration covered (time of the last entry), seconds.
    pub fn duration_secs(&self) -> f64 {
        self.entries.last().map_or(0.0, TraceEntry::at_secs)
    }

    /// Mean offered rate over the covered duration, requests/second.
    pub fn mean_rate(&self) -> f64 {
        let d = self.duration_secs();
        if d <= 0.0 {
            0.0
        } else {
            self.len() as f64 / d
        }
    }

    /// Writes the trace as JSON.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save_json<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                gage_json::Json::obj([
                    ("at_us", gage_json::Json::from(e.at_us)),
                    ("host", gage_json::Json::str(&e.host)),
                    ("path", gage_json::Json::str(&e.path)),
                    ("size_bytes", gage_json::Json::from(e.size_bytes)),
                ])
            })
            .collect();
        let doc = gage_json::Json::obj([("entries", gage_json::Json::Arr(entries))]);
        writer.write_all(doc.to_string().as_bytes())
    }

    /// Reads a trace written by [`Trace::save_json`].
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; malformed documents are reported as
    /// `InvalidData`.
    pub fn load_json<R: Read>(mut reader: R) -> std::io::Result<Self> {
        let mut text = String::new();
        reader.read_to_string(&mut text)?;
        let invalid = |what: &str| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("trace json: {what}"),
            )
        };
        let doc = gage_json::parse(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        let entries = doc
            .get("entries")
            .and_then(gage_json::Json::as_array)
            .ok_or_else(|| invalid("missing entries array"))?
            .iter()
            .map(|v| {
                Some(TraceEntry {
                    at_us: v.get("at_us")?.as_u64()?,
                    host: v.get("host")?.as_str()?.to_string(),
                    path: v.get("path")?.as_str()?.to_string(),
                    size_bytes: v.get("size_bytes")?.as_u64()?,
                })
            })
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| invalid("malformed entry"))?;
        Ok(Trace { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_trace() -> Trace {
        let mut g = SyntheticGenerator::new(6144, 2);
        let mut rng = StdRng::seed_from_u64(0);
        Trace::generate(
            "site1.example.com",
            ArrivalProcess::Constant { rate: 50.0 },
            2.0,
            &mut g,
            &mut rng,
        )
    }

    #[test]
    fn generate_constant_rate() {
        let t = sample_trace();
        assert_eq!(t.len(), 100);
        assert!((t.mean_rate() - 50.0).abs() < 1.0);
        assert!(t.entries.iter().all(|e| e.host == "site1.example.com"));
        assert!(t.entries.windows(2).all(|w| w[0].at_us <= w[1].at_us));
        assert_eq!(t.entries[1].at_us, 20_000, "50/s spacing is 20ms");
    }

    #[test]
    fn merge_interleaves_sorted() {
        let mut g = SyntheticGenerator::new(100, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let a = Trace::generate(
            "a.com",
            ArrivalProcess::Constant { rate: 10.0 },
            1.0,
            &mut g,
            &mut rng,
        );
        let b = Trace::generate(
            "b.com",
            ArrivalProcess::Constant { rate: 7.0 },
            1.0,
            &mut g,
            &mut rng,
        );
        let m = Trace::merge([a.clone(), b.clone()]);
        assert_eq!(m.len(), a.len() + b.len());
        assert!(m.entries.windows(2).all(|w| w[0].at_us <= w[1].at_us));
    }

    #[test]
    fn json_round_trip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.save_json(&mut buf).unwrap();
        let back = Trace::load_json(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn empty_trace_stats() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.duration_secs(), 0.0);
        assert_eq!(t.mean_rate(), 0.0);
    }
}
