//! The Gage front-end (RDN) binary.
//!
//! ```text
//! gage-rdn --listen 127.0.0.1:8080 --control 127.0.0.1:8100 \
//!          --site gold.local=200 --site bronze.local=50 \
//!          --backend 127.0.0.1:9001 --backend 127.0.0.1:9002 \
//!          [--trace trace.jsonl] [--run-secs 30]
//! ```
//!
//! `--trace PATH` enables the gage-obs trace ring (64 Ki records) and
//! writes its dump to PATH when the run ends; `--run-secs N` ends the run
//! after N seconds instead of serving forever. A dump is only written when
//! the run actually ends, so `--trace` is typically paired with
//! `--run-secs`. Inspect the dump with the `tracedump` binary.

use std::net::SocketAddr;
use std::process::ExitCode;

use gage_core::resource::Grps;
use gage_core::subscriber::SubscriberId;
use gage_rt::frontend::{spawn_frontend, FrontendConfig, SiteConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: gage-rdn --listen ADDR --control ADDR \
         --site HOST=GRPS [--site ...] --backend ADDR [--backend ...] \
         [--trace PATH] [--run-secs N]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut listen: Option<SocketAddr> = None;
    let mut control: Option<SocketAddr> = None;
    let mut sites: Vec<SiteConfig> = Vec::new();
    let mut backends: Vec<SocketAddr> = Vec::new();
    let mut trace: Option<String> = None;
    let mut run_secs: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else {
            return usage();
        };
        match flag.as_str() {
            "--listen" => listen = value.parse().ok(),
            "--control" => control = value.parse().ok(),
            "--site" => {
                let Some((host, grps)) = value.split_once('=') else {
                    return usage();
                };
                let Ok(grps) = grps.parse::<f64>() else {
                    return usage();
                };
                sites.push(SiteConfig {
                    host: host.to_string(),
                    reservation: Grps(grps),
                });
            }
            "--backend" => match value.parse() {
                Ok(addr) => backends.push(addr),
                Err(_) => return usage(),
            },
            "--trace" => trace = Some(value),
            "--run-secs" => match value.parse() {
                Ok(secs) => run_secs = Some(secs),
                Err(_) => return usage(),
            },
            _ => return usage(),
        }
    }
    let (Some(listen), Some(control)) = (listen, control) else {
        return usage();
    };
    if sites.is_empty() || backends.is_empty() {
        return usage();
    }

    let n_sites = sites.len();
    let cfg = FrontendConfig {
        listen,
        control,
        sites,
        backends,
        trace_capacity: trace.as_ref().map(|_| 1 << 16),
        ..FrontendConfig::loopback(Vec::new(), Vec::new())
    };
    let handle = match spawn_frontend(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("gage-rdn: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "gage-rdn: serving on {} (control {})",
        handle.http_addr, handle.control_addr
    );

    // Periodic status line until the process is interrupted (or the
    // requested run length elapses).
    let started = std::time::Instant::now();
    loop {
        for i in 0..n_sites {
            let c = handle.counters(SubscriberId(i as u32));
            println!(
                "  sub{}: accepted={} dropped={} dispatched={} completed={}",
                i, c.accepted, c.dropped, c.dispatched, c.completed
            );
        }
        match run_secs {
            None => std::thread::sleep(std::time::Duration::from_secs(5)),
            Some(secs) => {
                let elapsed = started.elapsed().as_secs();
                if elapsed >= secs {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_secs((secs - elapsed).min(5)));
            }
        }
    }

    if let Some(path) = trace {
        let Some(dump) = handle.trace_dump() else {
            eprintln!("gage-rdn: tracing was not enabled");
            return ExitCode::FAILURE;
        };
        if let Err(e) = std::fs::write(&path, dump) {
            eprintln!("gage-rdn: failed to write trace {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("gage-rdn: wrote trace to {path}");
    }
    ExitCode::SUCCESS
}
