//! The Gage back-end (RPN) binary.
//!
//! ```text
//! gage-rpn --listen 127.0.0.1:9001 --report-to 127.0.0.1:8100 \
//!          [--base-cpu-us 1490] [--per-kib-cpu-us 55] [--disk-us 0]
//! ```

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

use gage_rt::backend::{spawn_backend, BackendConfig, BackendCost};

fn usage() -> ExitCode {
    eprintln!(
        "usage: gage-rpn --listen ADDR [--report-to ADDR] \
         [--base-cpu-us N] [--per-kib-cpu-us N] [--disk-us N] [--acct-ms N]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut listen: Option<SocketAddr> = None;
    let mut report_to: Option<SocketAddr> = None;
    let mut cost = BackendCost::default();
    let mut acct_ms: u64 = 100;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else {
            return usage();
        };
        match flag.as_str() {
            "--listen" => listen = value.parse().ok(),
            "--report-to" => report_to = value.parse().ok(),
            "--base-cpu-us" => match value.parse() {
                Ok(v) => cost.base_cpu_us = v,
                Err(_) => return usage(),
            },
            "--per-kib-cpu-us" => match value.parse() {
                Ok(v) => cost.per_kib_cpu_us = v,
                Err(_) => return usage(),
            },
            "--disk-us" => match value.parse() {
                Ok(v) => cost.disk_us = v,
                Err(_) => return usage(),
            },
            "--acct-ms" => match value.parse() {
                Ok(v) => acct_ms = v,
                Err(_) => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(listen) = listen else {
        return usage();
    };

    let cfg = BackendConfig {
        listen,
        report_to,
        accounting_cycle: Duration::from_millis(acct_ms),
        cost,
        ..Default::default()
    };
    let handle = match spawn_backend(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("gage-rpn: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("gage-rpn: serving on {}", handle.http_addr);

    // Periodic status line until the process is interrupted.
    loop {
        println!("  served={} total requests", handle.served());
        std::thread::sleep(Duration::from_secs(5));
    }
}
