//! The open-loop load client binary.
//!
//! ```text
//! gage-client --target 127.0.0.1:8080 --host gold.local --rate 100 \
//!             --secs 10 [--size 6144]
//! ```

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

use gage_rt::client::{run_load, ClientConfig};

fn usage() -> ExitCode {
    eprintln!("usage: gage-client --target ADDR --host HOST --rate N --secs N [--size BYTES]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut target: Option<SocketAddr> = None;
    let mut host: Option<String> = None;
    let mut rate: f64 = 10.0;
    let mut secs: u64 = 5;
    let mut size: u64 = 6 * 1024;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else {
            return usage();
        };
        match flag.as_str() {
            "--target" => target = value.parse().ok(),
            "--host" => host = Some(value),
            "--rate" => match value.parse() {
                Ok(v) => rate = v,
                Err(_) => return usage(),
            },
            "--secs" => match value.parse() {
                Ok(v) => secs = v,
                Err(_) => return usage(),
            },
            "--size" => match value.parse() {
                Ok(v) => size = v,
                Err(_) => return usage(),
            },
            _ => return usage(),
        }
    }
    let (Some(target), Some(host)) = (target, host) else {
        return usage();
    };

    let duration = Duration::from_secs(secs);
    let cfg = ClientConfig {
        duration,
        size,
        ..ClientConfig::new(target, host.clone(), rate)
    };
    println!("gage-client: {rate} req/s against {host} via {target} for {secs}s");
    let stats = run_load(cfg);
    println!(
        "attempted {}  ok {}  dropped {}  errors {}",
        stats.attempted, stats.ok, stats.dropped, stats.errors
    );
    println!(
        "goodput {:.1} req/s  mean latency {:.1} ms  max {:.1} ms  bytes {}",
        stats.goodput(duration),
        stats.mean_latency().as_secs_f64() * 1e3,
        stats.latency_max.as_secs_f64() * 1e3,
        stats.bytes
    );
    ExitCode::SUCCESS
}
