//! A minimal HTTP/1.0 implementation: enough to carry the Gage evaluation
//! traffic (GET with Host and size hints, fixed-length responses).

use std::collections::HashMap;
use std::fmt;
use std::io::{Read, Write};

/// Maximum accepted request-head size.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// A parsed request head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestHead {
    /// Method (`GET`, …).
    pub method: String,
    /// Path (`/dir00001/class1_3`).
    pub path: String,
    /// Headers, lower-cased names.
    pub headers: HashMap<String, String>,
}

impl RequestHead {
    /// The Host header without any `:port` suffix, lower-cased.
    pub fn host(&self) -> Option<String> {
        let raw = self.headers.get("host")?;
        let host = match raw.rsplit_once(':') {
            Some((h, p)) if p.chars().all(|c| c.is_ascii_digit()) => h,
            _ => raw.as_str(),
        };
        Some(host.to_ascii_lowercase())
    }

    /// The `X-Size` response-size hint, if present.
    pub fn size_hint(&self) -> Option<u64> {
        self.headers.get("x-size")?.trim().parse().ok()
    }

    /// Serializes the head back to wire form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = format!("{} {} HTTP/1.0\r\n", self.method, self.path).into_bytes();
        for (k, v) in &self.headers {
            out.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out
    }

    /// Builds a GET with a Host and optional size hint.
    pub fn get(path: &str, host: &str, size_hint: Option<u64>) -> Self {
        let mut headers = HashMap::new();
        headers.insert("host".to_string(), host.to_string());
        if let Some(s) = size_hint {
            headers.insert("x-size".to_string(), s.to_string());
        }
        RequestHead {
            method: "GET".to_string(),
            path: path.to_string(),
            headers,
        }
    }
}

/// Errors from [`read_request_head`].
#[derive(Debug)]
pub enum HttpError {
    /// Transport failure.
    Io(std::io::Error),
    /// The head exceeded [`MAX_HEAD_BYTES`] or the peer closed early.
    Truncated,
    /// The bytes were not a valid HTTP/1.x request head.
    Malformed,
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Truncated => f.write_str("request head truncated"),
            HttpError::Malformed => f.write_str("malformed request head"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Parses a request head from a byte buffer ending in `\r\n\r\n`.
///
/// # Errors
///
/// Fails if the bytes are not a well-formed HTTP/1.x request head.
pub fn parse_request_head(buf: &[u8]) -> Result<RequestHead, HttpError> {
    let text = std::str::from_utf8(buf).map_err(|_| HttpError::Malformed)?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().ok_or(HttpError::Malformed)?;
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts.next().ok_or(HttpError::Malformed)?.to_string();
    let path = parts.next().ok_or(HttpError::Malformed)?.to_string();
    let version = parts.next().ok_or(HttpError::Malformed)?;
    if !version.starts_with("HTTP/") {
        return Err(HttpError::Malformed);
    }
    let mut headers = HashMap::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let (name, value) = line.split_once(':').ok_or(HttpError::Malformed)?;
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }
    Ok(RequestHead {
        method,
        path,
        headers,
    })
}

/// Reads a request head (through the blank line) from `stream`, returning
/// the head and any body bytes that were already read past it.
///
/// # Errors
///
/// Fails on transport errors, oversized heads, or malformed requests.
pub fn read_request_head<S>(stream: &mut S) -> Result<(RequestHead, Vec<u8>), HttpError>
where
    S: Read,
{
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        if let Some(pos) = find_head_end(&buf) {
            let rest = buf.split_off(pos);
            return parse_request_head(&buf).map(|h| (h, rest));
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::Truncated);
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::Truncated);
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Writes a `200 OK` response with a body of `size` filler bytes.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_ok_response<S>(stream: &mut S, size: usize) -> Result<(), std::io::Error>
where
    S: Write,
{
    let head = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: application/octet-stream\r\nContent-Length: {size}\r\n\r\n"
    );
    stream.write_all(head.as_bytes())?;
    // Stream the body in chunks to avoid one huge allocation.
    const CHUNK: usize = 16 * 1024;
    let filler = [b'g'; CHUNK];
    let mut remaining = size;
    while remaining > 0 {
        let n = remaining.min(CHUNK);
        stream.write_all(&filler[..n])?;
        remaining -= n;
    }
    stream.flush()?;
    Ok(())
}

/// Writes an error response with the given status line (e.g.
/// `"503 Service Unavailable"`).
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_error_response<S>(stream: &mut S, status: &str) -> Result<(), std::io::Error>
where
    S: Write,
{
    let head = format!("HTTP/1.0 {status}\r\nContent-Length: 0\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.flush()?;
    Ok(())
}

/// Reads a full response (head + body) and returns the status code and body
/// length.
///
/// # Errors
///
/// Fails on transport errors or a malformed status line.
pub fn read_response<S>(stream: &mut S) -> Result<(u16, u64), HttpError>
where
    S: Read,
{
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    // Read everything until EOF (HTTP/1.0 close-delimited).
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    let head_end = find_head_end(&buf).ok_or(HttpError::Malformed)?;
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| HttpError::Malformed)?;
    let status_line = head.split("\r\n").next().ok_or(HttpError::Malformed)?;
    let code: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or(HttpError::Malformed)?;
    Ok((code, (buf.len() - head_end) as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// A connected loopback TCP pair for streaming tests.
    fn tcp_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        (client, server)
    }

    #[test]
    fn parse_basic_request() {
        let head =
            parse_request_head(b"GET /x HTTP/1.0\r\nHost: Gold.Local:8080\r\nX-Size: 4096\r\n\r\n")
                .expect("parses");
        assert_eq!(head.method, "GET");
        assert_eq!(head.path, "/x");
        assert_eq!(head.host().as_deref(), Some("gold.local"));
        assert_eq!(head.size_hint(), Some(4096));
    }

    #[test]
    fn head_round_trip() {
        let h = RequestHead::get("/abc", "site.local", Some(100));
        let parsed = parse_request_head(&h.to_bytes()).expect("parses");
        assert_eq!(parsed.path, "/abc");
        assert_eq!(parsed.host().as_deref(), Some("site.local"));
        assert_eq!(parsed.size_hint(), Some(100));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_request_head(b"NOT HTTP").is_err());
        assert!(parse_request_head(b"GET /x\r\n\r\n").is_err());
        assert!(parse_request_head(&[0xff, 0xfe]).is_err());
    }

    #[test]
    fn head_reader_handles_split_arrival() {
        let (mut a, mut b) = tcp_pair();
        let writer = std::thread::spawn(move || {
            a.write_all(b"GET /y HTTP/1.0\r\nHo").expect("write");
            a.flush().expect("flush");
            std::thread::sleep(std::time::Duration::from_millis(20));
            a.write_all(b"st: s.local\r\n\r\nBODY").expect("write");
        });
        let (head, rest) = read_request_head(&mut b).expect("reads");
        writer.join().expect("writer");
        assert_eq!(head.path, "/y");
        assert_eq!(head.host().as_deref(), Some("s.local"));
        assert_eq!(rest, b"BODY");
    }

    #[test]
    fn response_round_trip() {
        let (mut a, mut b) = tcp_pair();
        let server = std::thread::spawn(move || {
            write_ok_response(&mut a, 10_000).expect("writes");
            // Dropping `a` closes the stream (HTTP/1.0 semantics).
        });
        let (code, body) = read_response(&mut b).expect("reads");
        server.join().expect("server");
        assert_eq!(code, 200);
        assert_eq!(body, 10_000);
    }

    #[test]
    fn oversized_head_is_rejected() {
        let (mut a, mut b) = tcp_pair();
        let writer = std::thread::spawn(move || {
            if a.write_all(b"GET / HTTP/1.0\r\n").is_err() {
                return;
            }
            // Pour header bytes well past MAX_HEAD_BYTES without ever
            // closing the head.
            let filler = vec![b'x'; 1024];
            for _ in 0..12 {
                if a.write_all(b"X-Junk: ").is_err()
                    || a.write_all(&filler).is_err()
                    || a.write_all(b"\r\n").is_err()
                {
                    return;
                }
            }
        });
        let err = read_request_head(&mut b).expect_err("must reject");
        assert!(matches!(err, HttpError::Truncated), "got {err}");
        drop(b);
        let _ = writer.join();
    }

    #[test]
    fn early_close_is_truncated() {
        let (mut a, mut b) = tcp_pair();
        a.write_all(b"GET / HT").expect("write");
        drop(a);
        let err = read_request_head(&mut b).expect_err("must reject");
        assert!(matches!(err, HttpError::Truncated));
    }

    #[test]
    fn error_response_parses() {
        let (mut a, mut b) = tcp_pair();
        let server = std::thread::spawn(move || {
            write_error_response(&mut a, "503 Service Unavailable").expect("writes");
        });
        let (code, body) = read_response(&mut b).expect("reads");
        server.join().expect("server");
        assert_eq!(code, 503);
        assert_eq!(body, 0);
    }
}
