//! The front-end request distribution server (RDN role).
//!
//! Accepts client connections, reads the request head, classifies by Host,
//! queues the connection in its subscriber's queue, and lets the
//! `gage-core` scheduler decide — every scheduling cycle — which queued
//! connections to dispatch to which back end. Dispatched connections are
//! spliced (application-level relay) to the chosen back end. Accounting
//! reports arrive over a control listener and reconcile the scheduler's
//! balances.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gage_core::config::SchedulerConfig;
use gage_core::node::{NodeScheduler, RpnId};
use gage_core::resource::{Grps, ResourceVector};
use gage_core::scheduler::{RequestScheduler, SubscriberCounters};
use gage_core::subscriber::{SubscriberId, SubscriberRegistry};
use gage_des::SimTime;
use gage_obs::{Histogram, Registry, Tracer};
use parking_lot::Mutex;

use crate::backend::format_pred;
use crate::http::{read_request_head, write_error_response, RequestHead};
use crate::proto::{recv_msg, ControlMsg};
use crate::relay::splice;

/// One hosted site.
#[derive(Debug, Clone)]
pub struct SiteConfig {
    /// Classification host name.
    pub host: String,
    /// Reservation in GRPS.
    pub reservation: Grps,
}

/// Front-end configuration.
#[derive(Debug, Clone)]
pub struct FrontendConfig {
    /// Client-facing HTTP listen address.
    pub listen: SocketAddr,
    /// Control listen address for back-end registrations/reports.
    pub control: SocketAddr,
    /// Hosted sites.
    pub sites: Vec<SiteConfig>,
    /// Back-end HTTP addresses (index = `RpnId`).
    pub backends: Vec<SocketAddr>,
    /// Scheduler tunables.
    pub scheduler: SchedulerConfig,
    /// Per-backend capacity estimate for load balancing / spare gating.
    pub backend_capacity: ResourceVector,
    /// Retained trace-record count for gage-obs tracing; `None` disables
    /// tracing entirely (the hot path then pays a single branch).
    pub trace_capacity: Option<usize>,
    /// Deadline for reading a client's request head. A client that
    /// connects and then stalls is answered 408 and disconnected instead
    /// of pinning an accept thread forever.
    pub client_read_timeout: Duration,
}

impl FrontendConfig {
    /// A loopback configuration with ephemeral ports.
    pub fn loopback(sites: Vec<SiteConfig>, backends: Vec<SocketAddr>) -> Self {
        FrontendConfig {
            listen: "127.0.0.1:0".parse().expect("valid literal address"),
            control: "127.0.0.1:0".parse().expect("valid literal address"),
            sites,
            backends,
            scheduler: SchedulerConfig::default(),
            backend_capacity: ResourceVector::new(1e6, 1e6, 12.5e6),
            trace_capacity: None,
            client_read_timeout: Duration::from_secs(10),
        }
    }
}

/// A queued client connection awaiting dispatch.
#[derive(Debug)]
struct QueuedConn {
    stream: TcpStream,
    head: RequestHead,
    size: u64,
    /// Monotone per-front-end request id, stamped into the scheduler's
    /// `enqueue`/`drop`/`dispatch` trace records.
    req: u64,
    /// When the connection entered its subscriber queue.
    enqueued: Instant,
}

impl gage_core::scheduler::TraceTag for QueuedConn {
    fn trace_tag(&self) -> u64 {
        self.req
    }
}

/// Live latency histograms shared between the worker threads and
/// [`FrontendHandle::registry`].
#[derive(Debug, Default)]
struct FrontendStats {
    /// Queue wait (enqueue → dispatch), milliseconds.
    queue_wait_ms: Mutex<Histogram>,
    /// Dispatch-to-relay-close service time, milliseconds.
    service_ms: Mutex<Histogram>,
}

type SharedScheduler = Arc<Mutex<RequestScheduler<QueuedConn>>>;

/// A running front end; stops its worker threads on drop.
#[derive(Debug)]
pub struct FrontendHandle {
    /// The bound client-facing address.
    pub http_addr: SocketAddr,
    /// The bound control address (give this to back ends).
    pub control_addr: SocketAddr,
    scheduler: SharedScheduler,
    stop: Arc<AtomicBool>,
    tracer: Tracer,
    stats: Arc<FrontendStats>,
}

impl FrontendHandle {
    /// Lifetime counters for one subscriber.
    pub fn counters(&self, sub: SubscriberId) -> SubscriberCounters {
        self.scheduler.lock().counters(sub)
    }

    /// Live metrics snapshot: queue-wait and service-time histograms (with
    /// p50/p95/p99 in [`Registry::snapshot_json`] and
    /// [`Registry::to_table`]).
    pub fn registry(&self) -> Registry {
        let mut reg = Registry::new();
        reg.set_histogram(
            "frontend.queue_wait_ms",
            self.stats.queue_wait_ms.lock().clone(),
        );
        reg.set_histogram("frontend.service_ms", self.stats.service_ms.lock().clone());
        reg
    }

    /// Serializes the trace ring (header + one JSON record per line).
    /// `None` when the front end was spawned without `trace_capacity`.
    ///
    /// Records are stamped with nanoseconds since the front end started,
    /// quantized to the scheduler tick that most recently ran.
    pub fn trace_dump(&self) -> Option<String> {
        self.tracer.dump()
    }

    /// Stops the server: both accept loops exit after the next connection
    /// attempt, the scheduling loop after its next tick.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loops with dummy connections.
        let _ = TcpStream::connect(self.http_addr);
        let _ = TcpStream::connect(self.control_addr);
    }
}

impl Drop for FrontendHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Starts a front end and returns its handle once both listeners are bound.
///
/// # Errors
///
/// Fails if a listen address cannot be bound or a site host is duplicated.
pub fn spawn_frontend(cfg: FrontendConfig) -> std::io::Result<FrontendHandle> {
    let listener = TcpListener::bind(cfg.listen)?;
    let control_listener = TcpListener::bind(cfg.control)?;
    let http_addr = listener.local_addr()?;
    let control_addr = control_listener.local_addr()?;

    let mut registry = SubscriberRegistry::new();
    for s in &cfg.sites {
        registry
            .register(s.host.clone(), s.reservation)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
    }
    let mut nodes = NodeScheduler::new(cfg.scheduler.node_lookahead_secs);
    for _ in &cfg.backends {
        nodes.add_rpn(cfg.backend_capacity);
    }
    let tracer = match cfg.trace_capacity {
        Some(capacity) => Tracer::enabled(capacity),
        None => Tracer::disabled(),
    };
    let mut request_scheduler = RequestScheduler::new(&registry, cfg.scheduler, nodes);
    request_scheduler.set_tracer(tracer.clone());
    // One `Reservation` record per site up front, mirroring the
    // simulator: dumps become self-describing for `gage-audit`. The
    // runtime frontend is a single RDN, so every site is on shard 0.
    for i in 0..registry.len() {
        let sub = gage_core::subscriber::SubscriberId(i as u32);
        let grps = registry.get(sub).expect("registered").reservation.0;
        tracer.emit(gage_obs::TraceEvent::Reservation {
            sub: i as u32,
            grps,
            shard: 0,
        });
    }
    let scheduler: SharedScheduler = Arc::new(Mutex::new(request_scheduler));
    let registry = Arc::new(registry);
    let backends = Arc::new(cfg.backends.clone());
    let stop = Arc::new(AtomicBool::new(false));
    let next_req = Arc::new(AtomicU64::new(0));
    let stats = Arc::new(FrontendStats::default());

    // Accept loop: classify and enqueue.
    {
        let scheduler = Arc::clone(&scheduler);
        let registry = Arc::clone(&registry);
        let stop = Arc::clone(&stop);
        let next_req = Arc::clone(&next_req);
        let read_timeout = cfg.client_read_timeout;
        std::thread::spawn(move || loop {
            let Ok((stream, _)) = listener.accept() else {
                break;
            };
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let scheduler = Arc::clone(&scheduler);
            let registry = Arc::clone(&registry);
            let next_req = Arc::clone(&next_req);
            std::thread::spawn(move || {
                let _ =
                    classify_and_enqueue(stream, &scheduler, &registry, &next_req, read_timeout);
            });
        });
    }

    // Scheduling cycle.
    {
        let scheduler = Arc::clone(&scheduler);
        let backends = Arc::clone(&backends);
        let stop = Arc::clone(&stop);
        let stats = Arc::clone(&stats);
        let tracer = tracer.clone();
        let started = Instant::now();
        let cycle = Duration::from_secs_f64(cfg.scheduler.scheduling_cycle_secs);
        std::thread::spawn(move || loop {
            std::thread::sleep(cycle);
            if stop.load(Ordering::SeqCst) {
                break;
            }
            // Advance the trace clock once per tick: record timestamps are
            // nanoseconds since start, quantized to the scheduler cycle.
            tracer.set_now(SimTime::from_nanos(started.elapsed().as_nanos() as u64));
            let dispatches = scheduler.lock().run_cycle(cycle.as_secs_f64());
            for d in dispatches {
                let Some(&addr) = backends.get(d.rpn.0 as usize) else {
                    continue;
                };
                stats
                    .queue_wait_ms
                    .lock()
                    .observe(d.request.enqueued.elapsed().as_secs_f64() * 1e3);
                let stats = Arc::clone(&stats);
                std::thread::spawn(move || {
                    dispatch_one(d.request, d.subscriber, d.predicted, addr, &stats);
                });
            }
        });
    }

    // Control listener: registrations and reports.
    {
        let scheduler = Arc::clone(&scheduler);
        let backends = Arc::clone(&backends);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || loop {
            let Ok((stream, _)) = control_listener.accept() else {
                break;
            };
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let scheduler = Arc::clone(&scheduler);
            let backends = Arc::clone(&backends);
            std::thread::spawn(move || {
                let _ = control_conn(stream, &scheduler, &backends);
            });
        });
    }

    Ok(FrontendHandle {
        http_addr,
        control_addr,
        scheduler,
        stop,
        tracer,
        stats,
    })
}

fn classify_and_enqueue(
    mut stream: TcpStream,
    scheduler: &SharedScheduler,
    registry: &SubscriberRegistry,
    next_req: &AtomicU64,
    read_timeout: Duration,
) -> std::io::Result<()> {
    // Bound the head read: a stalled or byte-dribbling client is turned
    // away instead of holding this thread (and its connection slot) open.
    let _ = stream.set_read_timeout(Some(read_timeout));
    let head = match read_request_head(&mut stream) {
        Ok((head, _rest)) => head,
        Err(crate::http::HttpError::Io(e))
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            let _ = write_error_response(&mut stream, "408 Request Timeout");
            return Ok(());
        }
        Err(_) => {
            let _ = write_error_response(&mut stream, "400 Bad Request");
            return Ok(());
        }
    };
    // The head is in; splice relies on blocking reads from here on.
    let _ = stream.set_read_timeout(None);
    let Some(host) = head.host() else {
        let _ = write_error_response(&mut stream, "400 Bad Request");
        return Ok(());
    };
    let Some(sub) = registry.classify_host(&host) else {
        let _ = write_error_response(&mut stream, "404 Not Found");
        return Ok(());
    };
    let size = head.size_hint().unwrap_or(6 * 1024);
    let queued = QueuedConn {
        stream,
        head,
        size,
        req: next_req.fetch_add(1, Ordering::Relaxed),
        enqueued: Instant::now(),
    };
    if let Err(rejected) = scheduler.lock().enqueue(sub, queued) {
        // Queue full: this is the paper's "dropped" outcome.
        let mut stream = rejected.stream;
        let _ = write_error_response(&mut stream, "503 Service Unavailable");
    }
    Ok(())
}

fn dispatch_one(
    mut conn: QueuedConn,
    sub: SubscriberId,
    predicted: ResourceVector,
    backend_addr: SocketAddr,
    stats: &FrontendStats,
) {
    let started = Instant::now();
    let Ok(mut upstream) = TcpStream::connect(backend_addr) else {
        let _ = write_error_response(&mut conn.stream, "502 Bad Gateway");
        return;
    };
    // Forward the head with Gage's bookkeeping headers.
    let mut head = conn.head.clone();
    head.headers
        .insert("x-gage-sub".to_string(), sub.0.to_string());
    head.headers
        .insert("x-gage-pred".to_string(), format_pred(predicted));
    head.headers
        .insert("x-size".to_string(), conn.size.to_string());
    if upstream.write_all(&head.to_bytes()).is_err() {
        let _ = write_error_response(&mut conn.stream, "502 Bad Gateway");
        return;
    }
    // Application-level splice until both sides close.
    let _ = splice(&conn.stream, &upstream);
    stats
        .service_ms
        .lock()
        .observe(started.elapsed().as_secs_f64() * 1e3);
}

fn control_conn(
    stream: TcpStream,
    scheduler: &SharedScheduler,
    backends: &[SocketAddr],
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut rpn: Option<RpnId> = None;
    while let Some(msg) = recv_msg(&mut reader)? {
        match msg {
            ControlMsg::Register { http_addr } => {
                rpn = http_addr
                    .parse::<SocketAddr>()
                    .ok()
                    .and_then(|addr| backends.iter().position(|b| *b == addr))
                    .map(|i| RpnId(i as u16));
            }
            ControlMsg::Report { mut report } => {
                let Some(rpn) = rpn else {
                    continue; // unregistered peer: ignore
                };
                report.rpn = rpn;
                scheduler.lock().on_report(&report);
            }
        }
    }
    Ok(())
}
