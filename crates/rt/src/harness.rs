//! In-process assembly of a whole Gage deployment (front end + back ends)
//! for tests, examples and quick experiments.

use std::net::TcpListener;
use std::time::Duration;

use gage_core::resource::Grps;

use crate::backend::{spawn_backend_on, BackendConfig, BackendCost, BackendHandle};
use crate::frontend::{spawn_frontend, FrontendConfig, FrontendHandle, SiteConfig};

/// A running in-process deployment.
#[derive(Debug)]
pub struct Deployment {
    /// The front end.
    pub frontend: FrontendHandle,
    /// The back ends.
    pub backends: Vec<BackendHandle>,
}

/// Options for [`deploy`].
#[derive(Debug, Clone)]
pub struct DeployOptions {
    /// Number of back ends.
    pub backends: usize,
    /// Hosted sites: (host, reservation GRPS).
    pub sites: Vec<(String, f64)>,
    /// Back-end cost model.
    pub cost: BackendCost,
    /// Accounting cycle.
    pub accounting_cycle: Duration,
}

impl Default for DeployOptions {
    fn default() -> Self {
        DeployOptions {
            backends: 2,
            sites: vec![("site1.local".to_string(), 100.0)],
            cost: BackendCost::default(),
            accounting_cycle: Duration::from_millis(100),
        }
    }
}

/// Spawns back ends on ephemeral loopback ports and a front end wired to
/// them, with accounting reports flowing.
///
/// # Errors
///
/// Propagates bind/spawn failures.
pub fn deploy(opts: DeployOptions) -> std::io::Result<Deployment> {
    // Pre-bind the back-end listeners so the front end can be configured
    // with their final addresses before any server starts.
    let mut listeners = Vec::new();
    let mut backend_addrs = Vec::new();
    for _ in 0..opts.backends {
        let l = TcpListener::bind("127.0.0.1:0")?;
        backend_addrs.push(l.local_addr()?);
        listeners.push(l);
    }

    let sites = opts
        .sites
        .iter()
        .map(|(host, grps)| SiteConfig {
            host: host.clone(),
            reservation: Grps(*grps),
        })
        .collect();
    let frontend = spawn_frontend(FrontendConfig::loopback(sites, backend_addrs))?;

    let mut backends = Vec::new();
    for listener in listeners {
        backends.push(spawn_backend_on(
            listener,
            BackendConfig {
                report_to: Some(frontend.control_addr),
                cost: opts.cost,
                accounting_cycle: opts.accounting_cycle,
                ..Default::default()
            },
        )?);
    }

    Ok(Deployment { frontend, backends })
}
