//! The back-end request processing server (RPN role).
//!
//! Serves the evaluation's synthetic content with a *calibrated* cost
//! model: each request holds the node's single CPU for its CPU time and the
//! single disk channel for its disk time (both simulated by holding a lock
//! through a sleep), then streams a response of the requested size.
//! Per-subscriber usage is accumulated and reported to the front end every
//! accounting cycle, echoing the front end's predictions so balances
//! reconcile exactly.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use gage_core::accounting::{SubscriberUsage, UsageReport};
use gage_core::node::RpnId;
use gage_core::resource::ResourceVector;
use gage_core::subscriber::SubscriberId;
use parking_lot::Mutex;

use crate::http::{read_request_head, write_error_response, write_ok_response};
use crate::proto::{send_msg, ControlMsg};

/// Service cost calibration for a back end.
#[derive(Debug, Clone, Copy)]
pub struct BackendCost {
    /// Fixed CPU per request, µs.
    pub base_cpu_us: u64,
    /// CPU per KiB of response, µs.
    pub per_kib_cpu_us: u64,
    /// Disk channel time per request, µs (0 = fully cached).
    pub disk_us: u64,
}

impl Default for BackendCost {
    fn default() -> Self {
        BackendCost {
            base_cpu_us: 1_490,
            per_kib_cpu_us: 55,
            disk_us: 0,
        }
    }
}

impl BackendCost {
    /// CPU time for a response of `size` bytes, µs.
    pub fn cpu_us(&self, size: u64) -> u64 {
        self.base_cpu_us + self.per_kib_cpu_us * size / 1024
    }
}

/// Back-end configuration.
#[derive(Debug, Clone)]
pub struct BackendConfig {
    /// HTTP listen address (use port 0 for ephemeral).
    pub listen: SocketAddr,
    /// Where to send accounting reports (the front end's control address);
    /// `None` disables reporting (bypass mode).
    pub report_to: Option<SocketAddr>,
    /// Accounting cycle length.
    pub accounting_cycle: Duration,
    /// Service cost model.
    pub cost: BackendCost,
    /// Default response size when the client sends no `X-Size` hint.
    pub default_size: u64,
}

impl Default for BackendConfig {
    fn default() -> Self {
        BackendConfig {
            listen: "127.0.0.1:0".parse().expect("valid literal address"),
            report_to: None,
            accounting_cycle: Duration::from_millis(100),
            cost: BackendCost::default(),
            default_size: 6 * 1024,
        }
    }
}

#[derive(Debug, Default)]
struct CycleAccum {
    actual: ResourceVector,
    settled_predicted: ResourceVector,
    completed: u32,
}

#[derive(Debug, Default)]
struct Accounting {
    per_sub: BTreeMap<SubscriberId, CycleAccum>,
    total: ResourceVector,
    served: u64,
    /// Predicted-units work admitted but not yet completed on this node.
    outstanding_predicted: ResourceVector,
}

/// A running back end; stops its worker threads on drop.
#[derive(Debug)]
pub struct BackendHandle {
    /// The bound HTTP address.
    pub http_addr: SocketAddr,
    accounting: Arc<Mutex<Accounting>>,
    stop: Arc<AtomicBool>,
}

impl BackendHandle {
    /// Total requests served so far.
    pub fn served(&self) -> u64 {
        self.accounting.lock().served
    }

    /// Stops the server: the accept loop exits after the next connection
    /// attempt, the reporting loop after its next tick.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect(self.http_addr);
    }
}

impl Drop for BackendHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Starts a back end and returns its handle once the listener is bound.
///
/// # Errors
///
/// Fails if the listen address cannot be bound.
pub fn spawn_backend(cfg: BackendConfig) -> std::io::Result<BackendHandle> {
    let listener = TcpListener::bind(cfg.listen)?;
    spawn_backend_on(listener, cfg)
}

/// Starts a back end on an already-bound listener (lets callers learn the
/// address before the front end is configured).
///
/// # Errors
///
/// Fails if the listener's local address cannot be read.
pub fn spawn_backend_on(
    listener: TcpListener,
    cfg: BackendConfig,
) -> std::io::Result<BackendHandle> {
    let http_addr = listener.local_addr()?;
    let accounting = Arc::new(Mutex::new(Accounting::default()));
    let stop = Arc::new(AtomicBool::new(false));
    // One CPU, one disk channel: requests hold these locks through their
    // calibrated burn so the node really saturates like single hardware.
    let cpu = Arc::new(Mutex::new(()));
    let disk = Arc::new(Mutex::new(()));

    // Accept loop.
    {
        let accounting = Arc::clone(&accounting);
        let stop = Arc::clone(&stop);
        let cfg = cfg.clone();
        std::thread::spawn(move || loop {
            let Ok((stream, _)) = listener.accept() else {
                break;
            };
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let accounting = Arc::clone(&accounting);
            let cpu = Arc::clone(&cpu);
            let disk = Arc::clone(&disk);
            let cost = cfg.cost;
            let default_size = cfg.default_size;
            std::thread::spawn(move || {
                let _ = serve_one(stream, cost, default_size, &cpu, &disk, &accounting);
            });
        });
    }

    // Reporting loop.
    if let Some(report_to) = cfg.report_to {
        let accounting = Arc::clone(&accounting);
        let stop = Arc::clone(&stop);
        let cycle = cfg.accounting_cycle;
        std::thread::spawn(move || {
            // Reconnect loop: the front end may start after us.
            while !stop.load(Ordering::SeqCst) {
                let Ok(mut control) = TcpStream::connect(report_to) else {
                    std::thread::sleep(Duration::from_millis(200));
                    continue;
                };
                let register = ControlMsg::Register {
                    http_addr: http_addr.to_string(),
                };
                if send_msg(&mut control, &register).is_err() {
                    continue;
                }
                loop {
                    std::thread::sleep(cycle);
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    let report = drain_report(&accounting);
                    if send_msg(&mut control, &ControlMsg::Report { report }).is_err() {
                        break; // reconnect
                    }
                }
            }
        });
    }

    Ok(BackendHandle {
        http_addr,
        accounting,
        stop,
    })
}

fn drain_report(accounting: &Mutex<Accounting>) -> UsageReport {
    let mut acc = accounting.lock();
    let per_sub = std::mem::take(&mut acc.per_sub);
    let per_subscriber = per_sub
        .into_iter()
        .map(|(subscriber, c)| SubscriberUsage {
            subscriber,
            actual: c.actual,
            settled_predicted: c.settled_predicted,
            completed: c.completed,
        })
        .collect();
    let total = acc.total;
    acc.total = ResourceVector::ZERO;
    UsageReport {
        rpn: RpnId(0), // overwritten by the front end per registration
        total,
        outstanding_predicted: acc.outstanding_predicted,
        per_subscriber,
    }
}

fn serve_one(
    mut stream: TcpStream,
    cost: BackendCost,
    default_size: u64,
    cpu: &Mutex<()>,
    disk: &Mutex<()>,
    accounting: &Mutex<Accounting>,
) -> std::io::Result<()> {
    let Ok((head, _rest)) = read_request_head(&mut stream) else {
        let _ = write_error_response(&mut stream, "400 Bad Request");
        return Ok(());
    };
    let size = head.size_hint().unwrap_or(default_size);
    let sub: Option<SubscriberId> = head
        .headers
        .get("x-gage-sub")
        .and_then(|v| v.parse().ok())
        .map(SubscriberId);
    let predicted = head
        .headers
        .get("x-gage-pred")
        .and_then(|v| parse_pred(v))
        .unwrap_or(ResourceVector::ZERO);

    accounting.lock().outstanding_predicted += predicted;

    // CPU phase: hold the node's CPU for the calibrated burn.
    let cpu_us = cost.cpu_us(size);
    {
        let _held = cpu.lock();
        std::thread::sleep(Duration::from_micros(cpu_us));
    }
    // Disk phase.
    if cost.disk_us > 0 {
        let _held = disk.lock();
        std::thread::sleep(Duration::from_micros(cost.disk_us));
    }
    // Network phase: stream the response.
    write_ok_response(&mut stream, size as usize)?;

    let actual = ResourceVector::new(cpu_us as f64, cost.disk_us as f64, size as f64);
    let mut acc = accounting.lock();
    acc.outstanding_predicted = (acc.outstanding_predicted - predicted).clamped_nonnegative();
    acc.total += actual;
    acc.served += 1;
    if let Some(sub) = sub {
        let c = acc.per_sub.entry(sub).or_default();
        c.actual += actual;
        c.settled_predicted += predicted;
        c.completed += 1;
    }
    Ok(())
}

/// Parses the front end's `X-Gage-Pred: cpu;disk;net` header.
fn parse_pred(v: &str) -> Option<ResourceVector> {
    let mut it = v.split(';');
    let cpu = it.next()?.trim().parse().ok()?;
    let disk = it.next()?.trim().parse().ok()?;
    let net = it.next()?.trim().parse().ok()?;
    Some(ResourceVector::new(cpu, disk, net))
}

/// Formats the prediction header value.
pub fn format_pred(v: ResourceVector) -> String {
    format!("{:.1};{:.1};{:.1}", v.cpu_us, v.disk_us, v.net_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{read_response, RequestHead};
    use std::io::Write;

    #[test]
    fn serves_requested_size() {
        let backend = spawn_backend(BackendConfig {
            cost: BackendCost {
                base_cpu_us: 100,
                per_kib_cpu_us: 0,
                disk_us: 0,
            },
            ..Default::default()
        })
        .expect("backend starts");
        let mut stream = TcpStream::connect(backend.http_addr).expect("connect");
        let head = RequestHead::get("/x", "any.local", Some(12_345));
        stream.write_all(&head.to_bytes()).expect("write");
        let (code, body) = read_response(&mut stream).expect("response");
        assert_eq!(code, 200);
        assert_eq!(body, 12_345);
        assert_eq!(backend.served(), 1);
    }

    #[test]
    fn accumulates_per_subscriber_usage() {
        let backend = spawn_backend(BackendConfig {
            cost: BackendCost {
                base_cpu_us: 50,
                per_kib_cpu_us: 0,
                disk_us: 10,
            },
            ..Default::default()
        })
        .expect("backend starts");
        let mut stream = TcpStream::connect(backend.http_addr).expect("connect");
        let mut head = RequestHead::get("/x", "any.local", Some(1_000));
        head.headers
            .insert("x-gage-sub".to_string(), "2".to_string());
        head.headers.insert(
            "x-gage-pred".to_string(),
            format_pred(ResourceVector::new(60.0, 10.0, 1_000.0)),
        );
        stream.write_all(&head.to_bytes()).expect("write");
        let (code, _) = read_response(&mut stream).expect("response");
        assert_eq!(code, 200);

        let report = drain_report(&backend.accounting);
        assert_eq!(report.per_subscriber.len(), 1);
        let line = &report.per_subscriber[0];
        assert_eq!(line.subscriber, SubscriberId(2));
        assert_eq!(line.completed, 1);
        assert_eq!(line.actual.cpu_us, 50.0);
        assert_eq!(line.actual.disk_us, 10.0);
        assert_eq!(line.actual.net_bytes, 1_000.0);
        assert_eq!(line.settled_predicted.cpu_us, 60.0);
        // Second drain is empty.
        assert!(drain_report(&backend.accounting).per_subscriber.is_empty());
    }

    #[test]
    fn pred_header_round_trip() {
        let v = ResourceVector::new(1_820.5, 0.0, 6_144.0);
        let parsed = parse_pred(&format_pred(v)).expect("parses");
        assert!((parsed.cpu_us - 1_820.5).abs() < 0.1);
        assert_eq!(parsed.net_bytes, 6_144.0);
        assert!(parse_pred("junk").is_none());
    }
}
