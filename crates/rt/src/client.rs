//! The open-loop load generator (Banga–Druschel style): issues requests at
//! a constant rate regardless of completions, so overload actually
//! overloads.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use tokio::io::AsyncWriteExt;
use tokio::net::TcpStream;

use crate::http::{read_response, RequestHead};

/// Load-generation parameters for one site.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Front-end address.
    pub target: SocketAddr,
    /// Host header to send (selects the subscriber).
    pub host: String,
    /// Requests per second.
    pub rate: f64,
    /// How long to generate load.
    pub duration: Duration,
    /// Response size to request.
    pub size: u64,
    /// Per-request timeout.
    pub timeout: Duration,
}

impl ClientConfig {
    /// A sane default against `target` for `host`.
    pub fn new(target: SocketAddr, host: impl Into<String>, rate: f64) -> Self {
        ClientConfig {
            target,
            host: host.into(),
            rate,
            duration: Duration::from_secs(5),
            size: 6 * 1024,
            timeout: Duration::from_secs(10),
        }
    }
}

/// Aggregated load results.
#[derive(Debug, Clone, Default)]
pub struct LoadStats {
    /// Requests issued.
    pub attempted: u64,
    /// 200 responses.
    pub ok: u64,
    /// 503 responses (dropped by the front end).
    pub dropped: u64,
    /// Other failures (connect errors, timeouts, non-200/503).
    pub errors: u64,
    /// Total body bytes received.
    pub bytes: u64,
    /// Sum of latencies of `ok` responses.
    pub latency_sum: Duration,
    /// Maximum latency of `ok` responses.
    pub latency_max: Duration,
}

impl LoadStats {
    /// Mean latency of successful requests.
    pub fn mean_latency(&self) -> Duration {
        if self.ok == 0 {
            Duration::ZERO
        } else {
            self.latency_sum / self.ok as u32
        }
    }

    /// Goodput in requests/second over `elapsed`.
    pub fn goodput(&self, elapsed: Duration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.ok as f64 / elapsed.as_secs_f64()
        }
    }
}

/// Runs an open-loop load generation session and returns the stats.
pub async fn run_load(cfg: ClientConfig) -> LoadStats {
    let stats = Arc::new(Mutex::new(LoadStats::default()));
    let mut tick = tokio::time::interval(Duration::from_secs_f64(1.0 / cfg.rate.max(0.001)));
    tick.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Burst);
    let deadline = Instant::now() + cfg.duration;
    let mut workers = Vec::new();
    while Instant::now() < deadline {
        tick.tick().await;
        let stats = Arc::clone(&stats);
        let cfg = cfg.clone();
        stats.lock().attempted += 1;
        workers.push(tokio::spawn(async move {
            let started = Instant::now();
            let outcome = tokio::time::timeout(cfg.timeout, one_request(&cfg)).await;
            let mut s = stats.lock();
            match outcome {
                Ok(Ok((200, body))) => {
                    let lat = started.elapsed();
                    s.ok += 1;
                    s.bytes += body;
                    s.latency_sum += lat;
                    s.latency_max = s.latency_max.max(lat);
                }
                Ok(Ok((503, _))) => s.dropped += 1,
                _ => s.errors += 1,
            }
        }));
    }
    for w in workers {
        let _ = w.await;
    }
    let final_stats = stats.lock().clone();
    final_stats
}

/// Replays a [`gage_workload::Trace`] open-loop against `target`: each
/// entry is issued at its recorded offset (relative to the replay start)
/// with its own host, path and size. Returns aggregate stats.
pub async fn replay_trace(
    target: SocketAddr,
    trace: &gage_workload::Trace,
    timeout: Duration,
) -> LoadStats {
    let stats = Arc::new(Mutex::new(LoadStats::default()));
    let start = Instant::now();
    let mut workers = Vec::new();
    for e in &trace.entries {
        let at = Duration::from_micros(e.at_us);
        if let Some(wait) = at.checked_sub(start.elapsed()) {
            tokio::time::sleep(wait).await;
        }
        stats.lock().attempted += 1;
        let stats = Arc::clone(&stats);
        let host = e.host.clone();
        let path = e.path.clone();
        let size = e.size_bytes;
        workers.push(tokio::spawn(async move {
            let started = Instant::now();
            let outcome = tokio::time::timeout(timeout, async {
                let mut stream = TcpStream::connect(target).await?;
                let mut head = RequestHead::get(&path, &host, Some(size));
                head.headers
                    .insert("x-size".to_string(), size.to_string());
                stream.write_all(&head.to_bytes()).await?;
                read_response(&mut stream).await.map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                })
            })
            .await;
            let mut s = stats.lock();
            match outcome {
                Ok(Ok((200, body))) => {
                    let lat = started.elapsed();
                    s.ok += 1;
                    s.bytes += body;
                    s.latency_sum += lat;
                    s.latency_max = s.latency_max.max(lat);
                }
                Ok(Ok((503, _))) => s.dropped += 1,
                _ => s.errors += 1,
            }
        }));
    }
    for w in workers {
        let _ = w.await;
    }
    let out = stats.lock().clone();
    out
}

async fn one_request(cfg: &ClientConfig) -> std::io::Result<(u16, u64)> {
    let mut stream = TcpStream::connect(cfg.target).await?;
    let head = RequestHead::get("/load", &cfg.host, Some(cfg.size));
    stream.write_all(&head.to_bytes()).await?;
    // Half-close our side so HTTP/1.0 close-delimited reads terminate.
    read_response(&mut stream)
        .await
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_math() {
        let mut s = LoadStats::default();
        assert_eq!(s.mean_latency(), Duration::ZERO);
        s.ok = 4;
        s.latency_sum = Duration::from_millis(100);
        assert_eq!(s.mean_latency(), Duration::from_millis(25));
        assert!((s.goodput(Duration::from_secs(2)) - 2.0).abs() < 1e-12);
        assert_eq!(s.goodput(Duration::ZERO), 0.0);
    }
}
