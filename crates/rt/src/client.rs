//! The open-loop load generator (Banga–Druschel style): issues requests at
//! a constant rate regardless of completions, so overload actually
//! overloads.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::http::{read_response, RequestHead};

/// Load-generation parameters for one site.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Front-end address.
    pub target: SocketAddr,
    /// Host header to send (selects the subscriber).
    pub host: String,
    /// Requests per second.
    pub rate: f64,
    /// How long to generate load.
    pub duration: Duration,
    /// Response size to request.
    pub size: u64,
    /// Per-attempt timeout; attempt `n` waits `timeout × backoff^n`.
    pub timeout: Duration,
    /// Retries after the first attempt on connect errors and timeouts
    /// (definitive refusals — 503s — are never retried). 0 disables.
    pub retries: u32,
    /// Deterministic timeout growth factor per retry.
    pub backoff: f64,
}

impl ClientConfig {
    /// A sane default against `target` for `host`.
    pub fn new(target: SocketAddr, host: impl Into<String>, rate: f64) -> Self {
        ClientConfig {
            target,
            host: host.into(),
            rate,
            duration: Duration::from_secs(5),
            size: 6 * 1024,
            timeout: Duration::from_secs(10),
            retries: 2,
            backoff: 2.0,
        }
    }
}

/// Aggregated load results.
#[derive(Debug, Clone, Default)]
pub struct LoadStats {
    /// Requests issued.
    pub attempted: u64,
    /// 200 responses.
    pub ok: u64,
    /// 503 responses (dropped by the front end).
    pub dropped: u64,
    /// Other failures (connect errors, timeouts, non-200/503) after all
    /// retries were exhausted.
    pub errors: u64,
    /// Retry attempts issued (a request that succeeds on its second
    /// attempt counts one retry and one ok).
    pub retries: u64,
    /// Total body bytes received.
    pub bytes: u64,
    /// Sum of latencies of `ok` responses.
    pub latency_sum: Duration,
    /// Maximum latency of `ok` responses.
    pub latency_max: Duration,
}

impl LoadStats {
    /// Mean latency of successful requests.
    pub fn mean_latency(&self) -> Duration {
        if self.ok == 0 {
            Duration::ZERO
        } else {
            self.latency_sum / self.ok as u32
        }
    }

    /// Goodput in requests/second over `elapsed`.
    pub fn goodput(&self, elapsed: Duration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.ok as f64 / elapsed.as_secs_f64()
        }
    }

    fn record(&mut self, started: Instant, outcome: std::io::Result<(u16, u64)>) {
        match outcome {
            Ok((200, body)) => {
                let lat = started.elapsed();
                self.ok += 1;
                self.bytes += body;
                self.latency_sum += lat;
                self.latency_max = self.latency_max.max(lat);
            }
            Ok((503, _)) => self.dropped += 1,
            _ => self.errors += 1,
        }
    }
}

/// Runs an open-loop load generation session and returns the stats.
///
/// Each request gets its own thread so a slow server never throttles the
/// arrival process: request `n` is issued at `start + n / rate` regardless
/// of how many earlier requests are still in flight.
pub fn run_load(cfg: ClientConfig) -> LoadStats {
    let stats = Arc::new(Mutex::new(LoadStats::default()));
    let interval = Duration::from_secs_f64(1.0 / cfg.rate.max(0.001));
    let start = Instant::now();
    let mut workers = Vec::new();
    let mut n: u32 = 0;
    loop {
        let target_at = start + interval * n;
        if target_at >= start + cfg.duration {
            break;
        }
        if let Some(wait) = target_at.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        n += 1;
        stats.lock().attempted += 1;
        let stats = Arc::clone(&stats);
        let cfg = cfg.clone();
        workers.push(std::thread::spawn(move || {
            let started = Instant::now();
            let (outcome, retried) = request_with_retries(&cfg);
            let mut s = stats.lock();
            s.retries += retried;
            s.record(started, outcome);
        }));
    }
    for w in workers {
        let _ = w.join();
    }
    let final_stats = stats.lock().clone();
    final_stats
}

/// Issues one logical request with up to `cfg.retries` retries under
/// deterministic backoff: attempt `n` gets a `timeout × backoff^n`
/// deadline. Definitive responses (any HTTP status) stop the loop; only
/// transport errors — connect failures, timeouts — are retried. Returns
/// the final outcome and how many retries were used.
fn request_with_retries(cfg: &ClientConfig) -> (std::io::Result<(u16, u64)>, u64) {
    let mut retried = 0;
    loop {
        let timeout = cfg
            .timeout
            .mul_f64(cfg.backoff.max(1.0).powi(retried as i32));
        let outcome = timed_request(cfg.target, "/load", &cfg.host, cfg.size, timeout);
        if outcome.is_ok() || retried >= u64::from(cfg.retries) {
            return (outcome, retried);
        }
        retried += 1;
    }
}

/// Replays a [`gage_workload::Trace`] open-loop against `target`: each
/// entry is issued at its recorded offset (relative to the replay start)
/// with its own host, path and size. Returns aggregate stats.
pub fn replay_trace(
    target: SocketAddr,
    trace: &gage_workload::Trace,
    timeout: Duration,
) -> LoadStats {
    let stats = Arc::new(Mutex::new(LoadStats::default()));
    let start = Instant::now();
    let mut workers = Vec::new();
    for e in &trace.entries {
        let at = Duration::from_micros(e.at_us);
        if let Some(wait) = at.checked_sub(start.elapsed()) {
            std::thread::sleep(wait);
        }
        stats.lock().attempted += 1;
        let stats = Arc::clone(&stats);
        let host = e.host.clone();
        let path = e.path.clone();
        let size = e.size_bytes;
        workers.push(std::thread::spawn(move || {
            let started = Instant::now();
            let outcome = timed_request(target, &path, &host, size, timeout);
            stats.lock().record(started, outcome);
        }));
    }
    for w in workers {
        let _ = w.join();
    }
    let out = stats.lock().clone();
    out
}

/// One GET with connect/read/write deadlines approximating a whole-request
/// timeout.
fn timed_request(
    target: SocketAddr,
    path: &str,
    host: &str,
    size: u64,
    timeout: Duration,
) -> std::io::Result<(u16, u64)> {
    let mut stream = TcpStream::connect_timeout(&target, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let head = RequestHead::get(path, host, Some(size));
    stream.write_all(&head.to_bytes())?;
    read_response(&mut stream)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retries_give_up_against_dead_target() {
        // Nothing listens on a reserved port: every attempt fails fast with
        // a connect error, so the loop runs all retries then reports one
        // terminal error.
        let mut cfg = ClientConfig::new("127.0.0.1:1".parse().unwrap(), "site", 1.0);
        cfg.timeout = Duration::from_millis(50);
        cfg.retries = 2;
        let (outcome, retried) = request_with_retries(&cfg);
        assert!(outcome.is_err());
        assert_eq!(retried, 2);
    }

    #[test]
    fn stats_math() {
        let mut s = LoadStats::default();
        assert_eq!(s.mean_latency(), Duration::ZERO);
        s.ok = 4;
        s.latency_sum = Duration::from_millis(100);
        assert_eq!(s.mean_latency(), Duration::from_millis(25));
        assert!((s.goodput(Duration::from_secs(2)) - 2.0).abs() < 1e-12);
        assert_eq!(s.goodput(Duration::ZERO), 0.0);
    }
}
