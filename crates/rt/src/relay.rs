//! The application-level splice: after dispatch, the front end relays bytes
//! between the client connection and the back-end connection in both
//! directions until either side closes.
//!
//! This substitutes for the paper's kernel-level sequence-number splicing,
//! which an unprivileged userspace process cannot perform (the packet-level
//! mechanism itself is implemented in `gage-net::splice`). The control-plane
//! behaviour — classification, queueing, scheduling, accounting — is
//! identical; the data plane costs one extra copy through the front end.

use tokio::io::{AsyncRead, AsyncWrite};

/// Relays bytes bidirectionally until both sides close; returns
/// `(client_to_server, server_to_client)` byte counts.
///
/// # Errors
///
/// Propagates the first transport error from either direction.
pub async fn splice<A, B>(client: &mut A, server: &mut B) -> std::io::Result<(u64, u64)>
where
    A: AsyncRead + AsyncWrite + Unpin,
    B: AsyncRead + AsyncWrite + Unpin,
{
    tokio::io::copy_bidirectional(client, server).await
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokio::io::{AsyncReadExt, AsyncWriteExt};

    #[tokio::test]
    async fn bytes_flow_both_ways() {
        let (mut client_app, mut client_proxy) = tokio::io::duplex(1024);
        let (mut server_proxy, mut server_app) = tokio::io::duplex(1024);

        let proxy = tokio::spawn(async move {
            splice(&mut client_proxy, &mut server_proxy).await.unwrap()
        });

        // Client sends a request; server answers and closes.
        client_app.write_all(b"ping").await.unwrap();
        let mut buf = [0u8; 4];
        server_app.read_exact(&mut buf).await.unwrap();
        assert_eq!(&buf, b"ping");
        server_app.write_all(b"pong!").await.unwrap();
        drop(server_app);

        let mut out = Vec::new();
        // Close our write half so the relay can finish.
        client_app.shutdown().await.unwrap();
        client_app.read_to_end(&mut out).await.unwrap();
        assert_eq!(out, b"pong!");

        let (c2s, s2c) = proxy.await.unwrap();
        assert_eq!(c2s, 4);
        assert_eq!(s2c, 5);
    }
}
