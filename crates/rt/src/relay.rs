//! The application-level splice: after dispatch, the front end relays bytes
//! between the client connection and the back-end connection in both
//! directions until either side closes.
//!
//! This substitutes for the paper's kernel-level sequence-number splicing,
//! which an unprivileged userspace process cannot perform (the packet-level
//! mechanism itself is implemented in `gage-net::splice`). The control-plane
//! behaviour — classification, queueing, scheduling, accounting — is
//! identical; the data plane costs one extra copy through the front end.

use std::io;
use std::net::{Shutdown, TcpStream};

/// Relays bytes bidirectionally until both sides close; returns
/// `(client_to_server, server_to_client)` byte counts.
///
/// # Errors
///
/// Propagates the first transport error from either direction (a peer
/// closing normally is not an error).
pub fn splice(client: &TcpStream, server: &TcpStream) -> io::Result<(u64, u64)> {
    let mut c2s_read = client.try_clone()?;
    let mut c2s_write = server.try_clone()?;
    let forward = std::thread::spawn(move || {
        let n = io::copy(&mut c2s_read, &mut c2s_write);
        // Propagate our EOF so the server can finish.
        let _ = c2s_write.shutdown(Shutdown::Write);
        n
    });
    let mut s2c_read = server.try_clone()?;
    let mut s2c_write = client.try_clone()?;
    let s2c = {
        let n = io::copy(&mut s2c_read, &mut s2c_write);
        let _ = s2c_write.shutdown(Shutdown::Write);
        n
    };
    let c2s = forward
        .join()
        .map_err(|_| io::Error::other("relay thread panicked"))?;
    Ok((c2s?, s2c?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    fn tcp_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        (client, server)
    }

    #[test]
    fn bytes_flow_both_ways() {
        let (client_app, client_proxy) = tcp_pair();
        let (server_proxy, server_app) = tcp_pair();

        let proxy =
            std::thread::spawn(move || splice(&client_proxy, &server_proxy).expect("splice"));

        // Client sends a request; server answers and closes.
        let mut client_app = client_app;
        let mut server_app = server_app;
        client_app.write_all(b"ping").expect("write");
        let mut buf = [0u8; 4];
        server_app.read_exact(&mut buf).expect("read");
        assert_eq!(&buf, b"ping");
        server_app.write_all(b"pong!").expect("write");
        drop(server_app);

        // Close our write half so the relay can finish.
        client_app.shutdown(Shutdown::Write).expect("shutdown");
        let mut out = Vec::new();
        client_app.read_to_end(&mut out).expect("read");
        assert_eq!(out, b"pong!");

        let (c2s, s2c) = proxy.join().expect("proxy");
        assert_eq!(c2s, 4);
        assert_eq!(s2c, 5);
    }
}
