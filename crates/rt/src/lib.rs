//! The real-network Gage variant: a splicing front end, cost-calibrated
//! back-end servers and an open-loop load client, all on real TCP sockets
//! with thread-per-connection concurrency.
//!
//! This crate demonstrates the same control plane as the simulated cluster
//! (`gage-cluster`) — host-based classification, per-subscriber queues, the
//! `gage-core` WRR credit scheduler, least-loaded node selection and
//! accounting-cycle usage reports — against live sockets, suitable for a
//! local multi-process evaluation:
//!
//! ```text
//! gage-rpn  --listen 127.0.0.1:9001 --report-to 127.0.0.1:8100 &
//! gage-rpn  --listen 127.0.0.1:9002 --report-to 127.0.0.1:8100 &
//! gage-rdn  --listen 127.0.0.1:8080 --control 127.0.0.1:8100 \
//!           --site gold.local=200 --site bronze.local=50 \
//!           --backend 127.0.0.1:9001 --backend 127.0.0.1:9002 &
//! gage-client --target 127.0.0.1:8080 --host gold.local --rate 100 --secs 10
//! ```
//!
//! One substitution relative to the paper (documented in `DESIGN.md`):
//! kernel-level TCP splicing with sequence-number rewriting cannot be done
//! from an unprivileged userspace process, so the front end performs an
//! **application-level splice** — after dispatch it relays bytes between the
//! two sockets ([`relay`]). The packet-level splice itself is implemented
//! and tested in `gage-net`.
//!
//! Modules:
//!
//! * [`http`] — a minimal HTTP/1.0 request/response implementation,
//! * [`proto`] — the JSON-lines control protocol for usage reports,
//! * [`backend`] — the RPN server with a calibrated service cost model,
//! * [`frontend`] — the RDN dispatcher embedding the `gage-core` scheduler,
//! * [`relay`] — the application-level splice,
//! * [`client`] — the open-loop load generator,
//! * [`harness`] — in-process spawning of all three roles for tests and
//!   examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod client;
pub mod frontend;
pub mod harness;
pub mod http;
pub mod proto;
pub mod relay;

pub use backend::{BackendConfig, BackendHandle};
pub use client::{ClientConfig, LoadStats};
pub use frontend::{FrontendConfig, FrontendHandle, SiteConfig};
