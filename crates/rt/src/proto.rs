//! The RPN → RDN control protocol: newline-delimited JSON messages over a
//! persistent TCP connection.

use std::io::{BufRead, Write};

use gage_core::accounting::UsageReport;

/// Messages a back end sends the front end.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlMsg {
    /// First message on the control connection: which HTTP address this
    /// back end serves on (the front end maps it to an `RpnId`).
    Register {
        /// The back end's HTTP listen address, e.g. `127.0.0.1:9001`.
        http_addr: String,
    },
    /// An accounting-cycle usage report.
    Report {
        /// The report body (the `rpn` field is overwritten by the front end
        /// with the id it assigned at registration).
        report: UsageReport,
    },
}

impl ControlMsg {
    /// Serializes to the tagged wire object, e.g.
    /// `{"type":"register","http_addr":"127.0.0.1:9001"}`.
    pub fn to_json(&self) -> gage_json::Json {
        match self {
            ControlMsg::Register { http_addr } => gage_json::Json::obj([
                ("type", gage_json::Json::str("register")),
                ("http_addr", gage_json::Json::str(http_addr)),
            ]),
            ControlMsg::Report { report } => gage_json::Json::obj([
                ("type", gage_json::Json::str("report")),
                ("report", report.to_json()),
            ]),
        }
    }

    /// Parses a wire object written by [`ControlMsg::to_json`].
    pub fn from_json(v: &gage_json::Json) -> Option<Self> {
        match v.get("type")?.as_str()? {
            "register" => Some(ControlMsg::Register {
                http_addr: v.get("http_addr")?.as_str()?.to_string(),
            }),
            "report" => Some(ControlMsg::Report {
                report: UsageReport::from_json(v.get("report")?)?,
            }),
            _ => None,
        }
    }
}

/// Serializes one message as a JSON line.
///
/// # Errors
///
/// Propagates transport errors.
pub fn send_msg<W>(writer: &mut W, msg: &ControlMsg) -> std::io::Result<()>
where
    W: Write,
{
    let mut line = msg.to_json().to_string().into_bytes();
    line.push(b'\n');
    writer.write_all(&line)?;
    writer.flush()
}

/// Reads the next message, or `None` on clean EOF.
///
/// # Errors
///
/// Propagates transport errors; malformed lines are reported as
/// `InvalidData`.
pub fn recv_msg<R>(reader: &mut R) -> std::io::Result<Option<ControlMsg>>
where
    R: BufRead,
{
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    let invalid = |what: String| std::io::Error::new(std::io::ErrorKind::InvalidData, what);
    let doc = gage_json::parse(line.trim_end()).map_err(|e| invalid(e.to_string()))?;
    ControlMsg::from_json(&doc)
        .map(Some)
        .ok_or_else(|| invalid("unrecognized control message".to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gage_core::node::RpnId;
    use gage_core::resource::ResourceVector;
    use std::io::BufReader;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn round_trip_json() {
        let msg = ControlMsg::Report {
            report: UsageReport {
                rpn: RpnId(3),
                total: ResourceVector::new(1.0, 2.0, 3.0),
                outstanding_predicted: ResourceVector::new(4.0, 5.0, 6.0),
                per_subscriber: vec![],
            },
        };
        let text = msg.to_json().to_string();
        let back =
            ControlMsg::from_json(&gage_json::parse(&text).expect("parses")).expect("well-formed");
        assert_eq!(back, msg);
    }

    #[test]
    fn rejects_unknown_type() {
        let doc = gage_json::parse(r#"{"type":"launch_missiles"}"#).expect("parses");
        assert!(ControlMsg::from_json(&doc).is_none());
    }

    #[test]
    fn send_recv_over_tcp() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            send_msg(
                &mut stream,
                &ControlMsg::Register {
                    http_addr: "127.0.0.1:9001".into(),
                },
            )
            .expect("send");
        });
        let (stream, _) = listener.accept().expect("accept");
        let mut reader = BufReader::new(stream);
        let msg = recv_msg(&mut reader).expect("recv").expect("one message");
        client.join().expect("client");
        assert_eq!(
            msg,
            ControlMsg::Register {
                http_addr: "127.0.0.1:9001".into()
            }
        );
        // EOF after the client hangs up.
        assert!(recv_msg(&mut reader).expect("eof").is_none());
    }
}
