//! The RPN → RDN control protocol: newline-delimited JSON messages over a
//! persistent TCP connection.

use gage_core::accounting::UsageReport;
use serde::{Deserialize, Serialize};
use tokio::io::{AsyncBufReadExt, AsyncWrite, AsyncWriteExt, BufReader};
use tokio::net::tcp::OwnedReadHalf;

/// Messages a back end sends the front end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum ControlMsg {
    /// First message on the control connection: which HTTP address this
    /// back end serves on (the front end maps it to an `RpnId`).
    Register {
        /// The back end's HTTP listen address, e.g. `127.0.0.1:9001`.
        http_addr: String,
    },
    /// An accounting-cycle usage report.
    Report {
        /// The report body (the `rpn` field is overwritten by the front end
        /// with the id it assigned at registration).
        report: UsageReport,
    },
}

/// Serializes one message as a JSON line.
///
/// # Errors
///
/// Propagates transport errors; serialization of these types cannot fail.
pub async fn send_msg<W>(writer: &mut W, msg: &ControlMsg) -> std::io::Result<()>
where
    W: AsyncWrite + Unpin,
{
    let mut line = serde_json::to_vec(msg).expect("control messages serialize");
    line.push(b'\n');
    writer.write_all(&line).await?;
    writer.flush().await
}

/// Reads the next message, or `None` on clean EOF.
///
/// # Errors
///
/// Propagates transport errors; malformed lines are reported as
/// `InvalidData`.
pub async fn recv_msg(
    reader: &mut BufReader<OwnedReadHalf>,
) -> std::io::Result<Option<ControlMsg>> {
    let mut line = String::new();
    let n = reader.read_line(&mut line).await?;
    if n == 0 {
        return Ok(None);
    }
    serde_json::from_str(line.trim_end())
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gage_core::node::RpnId;
    use gage_core::resource::ResourceVector;

    #[test]
    fn round_trip_json() {
        let msg = ControlMsg::Report {
            report: UsageReport {
                rpn: RpnId(3),
                total: ResourceVector::new(1.0, 2.0, 3.0),
                outstanding_predicted: ResourceVector::new(4.0, 5.0, 6.0),
                per_subscriber: vec![],
            },
        };
        let json = serde_json::to_string(&msg).unwrap();
        let back: ControlMsg = serde_json::from_str(&json).unwrap();
        assert_eq!(back, msg);
    }

    #[tokio::test]
    async fn send_recv_over_tcp() {
        let listener = tokio::net::TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        let client = tokio::spawn(async move {
            let mut stream = tokio::net::TcpStream::connect(addr).await.unwrap();
            send_msg(
                &mut stream,
                &ControlMsg::Register {
                    http_addr: "127.0.0.1:9001".into(),
                },
            )
            .await
            .unwrap();
        });
        let (stream, _) = listener.accept().await.unwrap();
        let (rd, _wr) = stream.into_split();
        let mut reader = BufReader::new(rd);
        let msg = recv_msg(&mut reader).await.unwrap().unwrap();
        client.await.unwrap();
        assert_eq!(
            msg,
            ControlMsg::Register {
                http_addr: "127.0.0.1:9001".into()
            }
        );
        // EOF after the client hangs up.
        assert!(recv_msg(&mut reader).await.unwrap().is_none());
    }
}
