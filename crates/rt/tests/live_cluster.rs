//! End-to-end test of the real-network variant: an in-process deployment
//! with a front end, two back ends and open-loop clients over loopback TCP.

use std::time::Duration;

use gage_core::subscriber::SubscriberId;
use gage_rt::backend::BackendCost;
use gage_rt::client::{run_load, ClientConfig};
use gage_rt::harness::{deploy, DeployOptions};

#[test]
fn reserved_site_survives_an_overload_next_door() {
    // Two back ends, each able to serve ~200 requests/s of 6 KiB responses
    // (5 ms CPU per request), so the cluster saturates around 400 req/s.
    let deployment = deploy(DeployOptions {
        backends: 2,
        sites: vec![
            ("gold.local".to_string(), 150.0),
            ("hog.local".to_string(), 10.0),
        ],
        cost: BackendCost {
            base_cpu_us: 4_700,
            per_kib_cpu_us: 50,
            disk_us: 0,
        },
        accounting_cycle: Duration::from_millis(100),
    })
    .expect("deployment starts");

    let target = deployment.frontend.http_addr;
    // Let the back ends register before offering load.
    std::thread::sleep(Duration::from_millis(300));

    let gold = std::thread::spawn(move || {
        run_load(ClientConfig {
            duration: Duration::from_secs(4),
            size: 6 * 1024,
            timeout: Duration::from_secs(3),
            ..ClientConfig::new(target, "gold.local", 40.0)
        })
    });
    let hog = std::thread::spawn(move || {
        run_load(ClientConfig {
            duration: Duration::from_secs(4),
            size: 6 * 1024,
            timeout: Duration::from_secs(3),
            ..ClientConfig::new(target, "hog.local", 700.0)
        })
    });

    let gold_stats = gold.join().expect("gold client");
    let hog_stats = hog.join().expect("hog client");

    println!(
        "gold: attempted {} ok {} dropped {} errors {}",
        gold_stats.attempted, gold_stats.ok, gold_stats.dropped, gold_stats.errors
    );
    println!(
        "hog: attempted {} ok {} dropped {} errors {}",
        hog_stats.attempted, hog_stats.ok, hog_stats.dropped, hog_stats.errors
    );

    // The reserved site keeps flowing despite the hog swamping the cluster.
    assert!(
        gold_stats.ok as f64 >= 0.75 * gold_stats.attempted as f64,
        "gold served only {}/{}",
        gold_stats.ok,
        gold_stats.attempted
    );
    // The hog is well above cluster capacity: it must lose requests.
    assert!(
        hog_stats.ok < hog_stats.attempted,
        "hog improbably served everything ({}/{})",
        hog_stats.ok,
        hog_stats.attempted
    );
    assert!(
        hog_stats.dropped > 0,
        "overload should overflow the hog's queue"
    );

    // The front end observed completions via accounting reports.
    std::thread::sleep(Duration::from_millis(300));
    let gold_counters = deployment.frontend.counters(SubscriberId(0));
    assert!(
        gold_counters.completed > 0,
        "accounting reports should reach the scheduler"
    );
}

#[test]
fn unknown_host_is_rejected() {
    let deployment = deploy(DeployOptions::default()).expect("deploys");
    let stats = run_load(ClientConfig {
        duration: Duration::from_millis(500),
        timeout: Duration::from_secs(2),
        ..ClientConfig::new(deployment.frontend.http_addr, "nobody.local", 20.0)
    });
    assert_eq!(stats.ok, 0);
    assert!(stats.errors > 0, "404s count as errors");
}

#[test]
fn small_load_is_fully_served() {
    let deployment = deploy(DeployOptions {
        backends: 1,
        sites: vec![("solo.local".to_string(), 100.0)],
        cost: BackendCost {
            base_cpu_us: 500,
            per_kib_cpu_us: 10,
            disk_us: 0,
        },
        accounting_cycle: Duration::from_millis(100),
    })
    .expect("deploys");
    std::thread::sleep(Duration::from_millis(200));
    let stats = run_load(ClientConfig {
        duration: Duration::from_secs(2),
        size: 2_048,
        timeout: Duration::from_secs(2),
        ..ClientConfig::new(deployment.frontend.http_addr, "solo.local", 30.0)
    });
    println!(
        "solo: attempted {} ok {} dropped {} errors {}",
        stats.attempted, stats.ok, stats.dropped, stats.errors
    );
    assert!(
        stats.ok as f64 >= 0.9 * stats.attempted as f64,
        "light load should be fully served: {}/{}",
        stats.ok,
        stats.attempted
    );
    assert!(stats.bytes >= stats.ok * 2_048);
}

#[test]
fn trace_replay_drives_the_live_stack() {
    use gage_rt::client::replay_trace;
    use gage_workload::{ArrivalProcess, SyntheticGenerator, Trace};
    use rand::SeedableRng;

    let deployment = deploy(DeployOptions {
        backends: 1,
        sites: vec![("replay.local".to_string(), 200.0)],
        cost: BackendCost {
            base_cpu_us: 800,
            per_kib_cpu_us: 20,
            disk_us: 0,
        },
        accounting_cycle: Duration::from_millis(100),
    })
    .expect("deploys");
    std::thread::sleep(Duration::from_millis(200));

    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let mut gen = SyntheticGenerator::new(2_048, 3);
    let trace = Trace::generate(
        "replay.local",
        ArrivalProcess::Constant { rate: 25.0 },
        2.0,
        &mut gen,
        &mut rng,
    );
    let expected = trace.len() as u64;
    let stats = replay_trace(
        deployment.frontend.http_addr,
        &trace,
        Duration::from_secs(3),
    );
    println!(
        "replay: attempted {} ok {} dropped {} errors {}",
        stats.attempted, stats.ok, stats.dropped, stats.errors
    );
    assert_eq!(stats.attempted, expected);
    assert!(
        stats.ok as f64 >= 0.9 * expected as f64,
        "trace replay should mostly succeed: {}/{}",
        stats.ok,
        expected
    );
    assert!(stats.bytes >= stats.ok * 2_048);
}
