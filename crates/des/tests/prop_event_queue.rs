//! Randomized tests of the event queue and time arithmetic, driven by a
//! seeded RNG so every run checks the same cases.

use gage_des::{EventQueue, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Popping always yields events in non-decreasing time order, with
/// FIFO tie-breaking, regardless of insertion order.
#[test]
fn pops_sorted_stable() {
    let mut rng = StdRng::seed_from_u64(0x51);
    for _ in 0..64 {
        let n = rng.gen_range(1..200);
        let times: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..1_000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_millis(t), (t, i));
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some(ev) = q.pop() {
            if let Some((lt, li)) = last {
                assert!(ev.at >= lt, "time went backwards");
                if ev.at == lt {
                    assert!(ev.event.1 > li, "FIFO violated on ties");
                }
            }
            assert_eq!(SimTime::from_millis(ev.event.0), ev.at);
            last = Some((ev.at, ev.event.1));
        }
        assert!(q.is_empty());
    }
}

/// Cancelled events never come out; everything else always does.
#[test]
fn cancellation_is_exact() {
    let mut rng = StdRng::seed_from_u64(0x52);
    for _ in 0..64 {
        let n = rng.gen_range(1..100);
        let times: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..1_000)).collect();
        let cancel_mask: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, q.schedule(SimTime::from_millis(t), i)))
            .collect();
        let mut expect: std::collections::HashSet<usize> = (0..times.len()).collect();
        for (i, id) in &ids {
            if cancel_mask.get(*i).copied().unwrap_or(false) {
                assert!(q.cancel(*id));
                expect.remove(i);
            }
        }
        assert_eq!(q.len(), expect.len());
        let mut seen = std::collections::HashSet::new();
        while let Some(ev) = q.pop() {
            assert!(seen.insert(ev.event), "duplicate delivery");
        }
        assert_eq!(seen, expect);
    }
}

/// Time arithmetic: (t + d) - t == d and ordering is consistent.
#[test]
fn time_arithmetic() {
    let mut rng = StdRng::seed_from_u64(0x53);
    for _ in 0..256 {
        let base: u64 = rng.gen_range(0..u64::MAX / 4);
        let d: u64 = rng.gen_range(0..u64::MAX / 4);
        let t = SimTime::from_nanos(base);
        let dur = SimDuration::from_nanos(d);
        assert_eq!((t + dur) - t, dur);
        assert!((t + dur) >= t);
        assert_eq!((t + dur) - dur, t);
        assert_eq!(t.saturating_since(t + dur), SimDuration::ZERO);
    }
}

/// Duration scaling round-trips through f64 within tolerance.
#[test]
fn duration_f64_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x54);
    for _ in 0..256 {
        let ms: u64 = rng.gen_range(0..10_000_000);
        let d = SimDuration::from_millis(ms);
        let back = SimDuration::from_secs_f64(d.as_secs_f64());
        let err = back.as_nanos().abs_diff(d.as_nanos());
        assert!(err <= 1 + d.as_nanos() / 1_000_000_000, "err {err}");
    }
}
