//! Property-based tests of the event queue and time arithmetic.

use gage_des::{EventQueue, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Popping always yields events in non-decreasing time order, with
    /// FIFO tie-breaking, regardless of insertion order.
    #[test]
    fn pops_sorted_stable(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_millis(t), (t, i));
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some(ev) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(ev.at >= lt, "time went backwards");
                if ev.at == lt {
                    prop_assert!(ev.event.1 > li, "FIFO violated on ties");
                }
            }
            prop_assert_eq!(SimTime::from_millis(ev.event.0), ev.at);
            last = Some((ev.at, ev.event.1));
        }
        prop_assert!(q.is_empty());
    }

    /// Cancelled events never come out; everything else always does.
    #[test]
    fn cancellation_is_exact(
        times in proptest::collection::vec(0u64..1_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, q.schedule(SimTime::from_millis(t), i)))
            .collect();
        let mut expect: std::collections::HashSet<usize> =
            (0..times.len()).collect();
        for (i, id) in &ids {
            if cancel_mask.get(*i).copied().unwrap_or(false) {
                prop_assert!(q.cancel(*id));
                expect.remove(i);
            }
        }
        prop_assert_eq!(q.len(), expect.len());
        let mut seen = std::collections::HashSet::new();
        while let Some(ev) = q.pop() {
            prop_assert!(seen.insert(ev.event), "duplicate delivery");
        }
        prop_assert_eq!(seen, expect);
    }

    /// Time arithmetic: (t + d) - t == d and ordering is consistent.
    #[test]
    fn time_arithmetic(base in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_nanos(base);
        let dur = SimDuration::from_nanos(d);
        prop_assert_eq!((t + dur) - t, dur);
        prop_assert!((t + dur) >= t);
        prop_assert_eq!((t + dur) - dur, t);
        prop_assert_eq!(t.saturating_since(t + dur), SimDuration::ZERO);
    }

    /// Duration scaling round-trips through f64 within tolerance.
    #[test]
    fn duration_f64_roundtrip(ms in 0u64..10_000_000) {
        let d = SimDuration::from_millis(ms);
        let back = SimDuration::from_secs_f64(d.as_secs_f64());
        let err = back.as_nanos().abs_diff(d.as_nanos());
        prop_assert!(err <= 1 + d.as_nanos() / 1_000_000_000, "err {err}");
    }
}
