//! Randomized tests of the event queue and time arithmetic, driven by a
//! seeded RNG so every run checks the same cases.
//!
//! The timing-wheel queue is additionally cross-checked against a
//! reference model that replicates the original `BinaryHeap` + tombstone
//! implementation verbatim: the wheel must produce the **same pop
//! sequence and the same `EventId`s** under arbitrary interleavings of
//! schedule/cancel/pop/peek, including far-future events that cascade
//! through multiple wheel levels and 10k-cancel churn.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use gage_collections::{Slab, SlabKey};
use gage_des::{EventQueue, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Popping always yields events in non-decreasing time order, with
/// FIFO tie-breaking, regardless of insertion order.
#[test]
fn pops_sorted_stable() {
    let mut rng = StdRng::seed_from_u64(0x51);
    for _ in 0..64 {
        let n = rng.gen_range(1..200);
        let times: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..1_000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_millis(t), (t, i));
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some(ev) = q.pop() {
            if let Some((lt, li)) = last {
                assert!(ev.at >= lt, "time went backwards");
                if ev.at == lt {
                    assert!(ev.event.1 > li, "FIFO violated on ties");
                }
            }
            assert_eq!(SimTime::from_millis(ev.event.0), ev.at);
            last = Some((ev.at, ev.event.1));
        }
        assert!(q.is_empty());
    }
}

/// Cancelled events never come out; everything else always does.
#[test]
fn cancellation_is_exact() {
    let mut rng = StdRng::seed_from_u64(0x52);
    for _ in 0..64 {
        let n = rng.gen_range(1..100);
        let times: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..1_000)).collect();
        let cancel_mask: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, q.schedule(SimTime::from_millis(t), i)))
            .collect();
        let mut expect: std::collections::HashSet<usize> = (0..times.len()).collect();
        for (i, id) in &ids {
            if cancel_mask.get(*i).copied().unwrap_or(false) {
                assert!(q.cancel(*id));
                expect.remove(i);
            }
        }
        assert_eq!(q.len(), expect.len());
        let mut seen = std::collections::HashSet::new();
        while let Some(ev) = q.pop() {
            assert!(seen.insert(ev.event), "duplicate delivery");
        }
        assert_eq!(seen, expect);
    }
}

/// Reference model: the pre-wheel `BinaryHeap`-backed queue, reproduced
/// operation for operation (same `Slab` liveness discipline, same lazy
/// tombstones), so the wheel's pop order *and* handed-out `EventId`s can
/// be compared against it exactly. `EventId` is opaque, so identity is
/// compared through its `Debug` form against the model's raw slab key.
struct HeapModel {
    heap: BinaryHeap<ModelEntry>,
    live: Slab<()>,
    next_seq: u64,
}

struct ModelEntry {
    at: u64,
    seq: u64,
    slot: SlabKey,
    payload: u64,
}

impl PartialEq for ModelEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for ModelEntry {}
impl PartialOrd for ModelEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ModelEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl HeapModel {
    fn new() -> Self {
        HeapModel {
            heap: BinaryHeap::new(),
            live: Slab::new(),
            next_seq: 0,
        }
    }

    /// Returns the raw id the real queue must hand out for this schedule.
    fn schedule(&mut self, at: u64, payload: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = self.live.insert(());
        self.heap.push(ModelEntry {
            at,
            seq,
            slot,
            payload,
        });
        slot.to_raw()
    }

    fn cancel(&mut self, raw: u64) -> bool {
        self.live.remove(SlabKey::from_raw(raw)).is_some()
    }

    fn pop(&mut self) -> Option<(u64, u64, u64)> {
        while let Some(e) = self.heap.pop() {
            if self.live.remove(e.slot).is_some() {
                return Some((e.at, e.slot.to_raw(), e.payload));
            }
        }
        None
    }

    fn peek(&mut self) -> Option<u64> {
        loop {
            let e = self.heap.peek()?;
            if self.live.contains(e.slot) {
                return Some(e.at);
            }
            self.heap.pop();
        }
    }

    fn len(&self) -> usize {
        self.live.len()
    }
}

fn id_debug(raw: u64) -> String {
    format!("EventId({raw})")
}

/// Drives the wheel and the heap model through an identical randomized op
/// sequence and asserts every observable agrees: handed-out ids, cancel
/// results, peeked times, and the full pop sequence.
fn cross_check(seed: u64, iters: usize, horizon_ns: u64, cancel_pct: u32, pop_pct: u32) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut wheel: EventQueue<u64> = EventQueue::new();
    let mut model = HeapModel::new();
    let mut ids: Vec<(gage_des::EventId, u64)> = Vec::new();
    let mut payload = 0u64;
    let mut now = 0u64;
    for _ in 0..iters {
        let roll = rng.gen_range(0..100u32);
        if roll < cancel_pct && !ids.is_empty() {
            // Cancel a random handle, possibly stale or already cancelled:
            // both sides must agree on whether it was still pending.
            let (id, raw) = ids[rng.gen_range(0..ids.len())];
            assert_eq!(wheel.cancel(id), model.cancel(raw));
        } else if roll < cancel_pct + pop_pct {
            let got = wheel.pop();
            let want = model.pop();
            match (got, want) {
                (None, None) => {}
                (Some(g), Some((at, raw, pl))) => {
                    assert_eq!(g.at.as_nanos(), at, "pop time diverged");
                    assert_eq!(format!("{:?}", g.id), id_debug(raw), "EventId diverged");
                    assert_eq!(g.event, pl, "payload diverged");
                    now = now.max(at);
                }
                (g, w) => panic!("pop presence diverged: {g:?} vs {w:?}"),
            }
        } else if roll < cancel_pct + pop_pct + 5 {
            assert_eq!(wheel.peek_time().map(SimTime::as_nanos), model.peek());
        } else {
            // Bias schedules toward the near future (the periodic-cycle
            // workload) but reach the whole horizon so upper levels and
            // overflow stay exercised.
            let at = if rng.gen_range(0..4u32) == 0 {
                now + rng.gen_range(0..horizon_ns)
            } else {
                now + rng.gen_range(0..20_000_000u64) // within 20 ms
            };
            payload += 1;
            let raw = model.schedule(at, payload);
            let id = wheel.schedule(SimTime::from_nanos(at), payload);
            assert_eq!(format!("{id:?}"), id_debug(raw), "schedule id diverged");
            ids.push((id, raw));
        }
        assert_eq!(wheel.len(), model.len());
    }
    // Drain both completely: full remaining order must match.
    loop {
        let got = wheel.pop();
        let want = model.pop();
        match (got, want) {
            (None, None) => break,
            (Some(g), Some((at, raw, pl))) => {
                assert_eq!((g.at.as_nanos(), g.event), (at, pl));
                assert_eq!(format!("{:?}", g.id), id_debug(raw));
            }
            (g, w) => panic!("drain diverged: {g:?} vs {w:?}"),
        }
    }
    assert!(wheel.is_empty());
}

/// Mixed schedule/cancel/pop/peek interleavings at cycle-scale times.
#[test]
fn wheel_matches_heap_model_on_interleavings() {
    for seed in [0x61, 0x62, 0x63, 0x64] {
        cross_check(seed, 4_000, 50_000_000, 25, 30);
    }
}

/// Far-future events that must cascade through multiple wheel levels
/// (horizon up to ~4.5 hours spans all six levels plus overflow).
#[test]
fn wheel_matches_heap_model_across_level_cascades() {
    for seed in [0x71, 0x72] {
        cross_check(seed, 1_500, 1u64 << 54, 15, 35);
    }
}

/// 10k-cancel churn: cancellation dominates, compaction kicks in, and the
/// survivors still pop in exactly the model's order with the model's ids.
#[test]
fn wheel_matches_heap_model_under_cancel_churn() {
    cross_check(0x81, 12_000, 10_000_000_000, 60, 10);
}

/// Time arithmetic: (t + d) - t == d and ordering is consistent.
#[test]
fn time_arithmetic() {
    let mut rng = StdRng::seed_from_u64(0x53);
    for _ in 0..256 {
        let base: u64 = rng.gen_range(0..u64::MAX / 4);
        let d: u64 = rng.gen_range(0..u64::MAX / 4);
        let t = SimTime::from_nanos(base);
        let dur = SimDuration::from_nanos(d);
        assert_eq!((t + dur) - t, dur);
        assert!((t + dur) >= t);
        assert_eq!((t + dur) - dur, t);
        assert_eq!(t.saturating_since(t + dur), SimDuration::ZERO);
    }
}

/// Duration scaling round-trips through f64 within tolerance.
#[test]
fn duration_f64_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x54);
    for _ in 0..256 {
        let ms: u64 = rng.gen_range(0..10_000_000);
        let d = SimDuration::from_millis(ms);
        let back = SimDuration::from_secs_f64(d.as_secs_f64());
        let err = back.as_nanos().abs_diff(d.as_nanos());
        assert!(err <= 1 + d.as_nanos() / 1_000_000_000, "err {err}");
    }
}
