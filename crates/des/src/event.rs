//! Cancellable timestamped event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use gage_collections::{Slab, SlabKey};

use crate::time::SimTime;

/// Opaque handle identifying a scheduled event, usable to cancel it before
/// it fires (e.g. a retransmission timer disarmed by an ACK).
///
/// Internally this packs a generational [`SlabKey`], so cancellation is an
/// O(1) arena probe rather than an ordered-set lookup, and a stale handle
/// (already fired or cancelled) can never alias a newer event even when the
/// arena reuses its slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

/// An event popped from the queue: when it fires and its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// The instant the event fires.
    pub at: SimTime,
    /// The handle under which it was scheduled.
    pub id: EventId,
    /// The payload.
    pub event: E,
}

#[derive(Debug)]
struct HeapEntry<E> {
    at: SimTime,
    /// Monotonic schedule order, the deterministic FIFO tie-break.
    seq: u64,
    /// Liveness handle in the arena; dead handles mark tombstones.
    slot: SlabKey,
    event: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    // Reverse ordering: BinaryHeap is a max-heap, we want earliest first,
    // breaking ties by insertion order for determinism.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of events ordered by firing time with deterministic
/// FIFO tie-breaking and lazy cancellation.
///
/// Cancellation removes the event's handle from a generational arena in
/// O(1) and leaves the heap entry behind as a tombstone; `pop` and
/// `peek_time` skip tombstones, and a compaction pass rebuilds the heap
/// when tombstones outnumber live entries, so memory stays proportional to
/// the live event count.
///
/// ```rust
/// use gage_des::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// let a = q.schedule(SimTime::from_millis(5), "late");
/// let _b = q.schedule(SimTime::from_millis(1), "early");
/// q.cancel(a);
/// assert_eq!(q.pop().unwrap().event, "early");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    /// One live marker per scheduled-and-not-yet-fired event. A heap entry
    /// whose slot no longer resolves here is a tombstone.
    live: Slab<()>,
    /// Tombstones currently buried in the heap.
    tombs: usize,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            live: Slab::new(),
            tombs: 0,
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `at` and returns a handle
    /// that can cancel it.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = self.live.insert(());
        self.heap.push(HeapEntry {
            at,
            seq,
            slot,
            event,
        });
        EventId(slot.to_raw())
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending, `false` if it had already fired or been cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.live.remove(SlabKey::from_raw(id.0)).is_none() {
            return false;
        }
        self.tombs += 1;
        self.maybe_compact();
        true
    }

    /// Removes and returns the earliest pending event, skipping cancelled
    /// entries. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        while let Some(entry) = self.heap.pop() {
            if self.live.remove(entry.slot).is_some() {
                return Some(ScheduledEvent {
                    at: entry.at,
                    id: EventId(entry.slot.to_raw()),
                    event: entry.event,
                });
            }
            self.tombs = self.tombs.saturating_sub(1);
        }
        None
    }

    /// Firing time of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let entry = self.heap.peek()?;
            if self.live.contains(entry.slot) {
                return Some(entry.at);
            }
            self.heap.pop();
            self.tombs = self.tombs.saturating_sub(1);
        }
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Rebuilds the heap without its tombstones once they dominate it, so a
    /// cancel-heavy workload (timers disarmed by ACKs) cannot grow the heap
    /// past a small multiple of the live event count. Retention preserves
    /// `seq`, so the rebuilt heap pops in the same deterministic order.
    fn maybe_compact(&mut self) {
        if self.tombs <= 64 || self.tombs * 2 <= self.heap.len() {
            return;
        }
        let mut entries = std::mem::take(&mut self.heap).into_vec();
        entries.retain(|e| self.live.contains(e.slot));
        self.heap = BinaryHeap::from(entries);
        self.tombs = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        let b = q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().id, b);
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_after_fire_does_not_disturb_later_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        let fired = q.pop().unwrap();
        assert_eq!(fired.id, a);
        assert!(!q.cancel(a), "cancelling a fired event reports false");
        let b = q.schedule(t(2), "b");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().id, b);
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(99)));
    }

    #[test]
    fn stale_id_does_not_cancel_reused_slot() {
        // After an event fires, its arena slot is reused by the next
        // schedule; the old handle must not be able to kill the new event.
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        assert_eq!(q.pop().unwrap().id, a);
        let b = q.schedule(t(2), "b");
        assert!(!q.cancel(a), "stale handle must miss");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().id, b);
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(5), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(5)));
        assert_eq!(q.pop().unwrap().event, "b");
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_schedule_pop_cancel() {
        let mut q = EventQueue::new();
        let mut popped = Vec::new();
        let a = q.schedule(t(10), 10);
        q.schedule(t(1), 1);
        popped.push(q.pop().unwrap().event);
        q.schedule(t(5), 5);
        q.cancel(a);
        q.schedule(t(7), 7);
        while let Some(e) = q.pop() {
            popped.push(e.event);
        }
        assert_eq!(popped, vec![1, 5, 7]);
    }

    #[test]
    fn pop_after_10k_cancels_stays_correct() {
        // Tombstone compaction: bury 10k cancelled timers around a handful
        // of survivors and check pops still come out in time order, with
        // the heap compacted well below the tombstone count.
        let mut q = EventQueue::new();
        let mut survivors = Vec::new();
        for i in 0u64..10_500 {
            let id = q.schedule(t(1 + (i * 7) % 10_000), i);
            if i % 21 == 0 {
                survivors.push(i);
            } else {
                assert!(q.cancel(id));
            }
        }
        assert_eq!(q.len(), survivors.len());
        assert!(
            q.heap.len() < 2_000,
            "compaction should have pruned tombstones, heap len {}",
            q.heap.len()
        );
        let mut popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(popped.len(), survivors.len());
        popped.sort_unstable();
        survivors.sort_unstable();
        assert_eq!(popped, survivors);
        assert!(q.is_empty());
        // The queue keeps working after the storm.
        q.schedule(t(1), 424_242);
        assert_eq!(q.pop().map(|e| e.event), Some(424_242));
    }
}
