//! Cancellable timestamped event queue.

use gage_collections::SlabKey;

use crate::time::SimTime;
use crate::wheel::{QueueStats, TimingWheel};

/// Opaque handle identifying a scheduled event, usable to cancel it before
/// it fires (e.g. a retransmission timer disarmed by an ACK).
///
/// Internally this packs a generational [`SlabKey`], so cancellation is an
/// O(1) arena probe rather than an ordered-set lookup, and a stale handle
/// (already fired or cancelled) can never alias a newer event even when the
/// arena reuses its slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

/// An event popped from the queue: when it fires and its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// The instant the event fires.
    pub at: SimTime,
    /// The handle under which it was scheduled.
    pub id: EventId,
    /// The payload.
    pub event: E,
}

/// A priority queue of events ordered by firing time with deterministic
/// FIFO tie-breaking and O(1) cancellation.
///
/// Backed by a hierarchical timing wheel (see [`crate::wheel`]): the fine
/// level buckets ~1 µs of virtual time, coarse levels cover 64× each, and
/// far-future events cascade down as the clock approaches them. Pop order
/// is exactly `(at, schedule order)` — byte-identical to the previous
/// `BinaryHeap` implementation, including the handles it returns — but
/// the common periodic-workload operations (schedule near-future, pop,
/// cancel) are O(1) instead of O(log n).
///
/// ```rust
/// use gage_des::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// let a = q.schedule(SimTime::from_millis(5), "late");
/// let _b = q.schedule(SimTime::from_millis(1), "early");
/// q.cancel(a);
/// assert_eq!(q.pop().unwrap().event, "early");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    wheel: TimingWheel<E>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            wheel: TimingWheel::new(),
        }
    }

    /// Schedules `event` to fire at absolute time `at` and returns a handle
    /// that can cancel it.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        EventId(self.wheel.schedule(at.as_nanos(), event).to_raw())
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending, `false` if it had already fired or been cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.wheel.cancel(SlabKey::from_raw(id.0))
    }

    /// Removes and returns the earliest pending event, skipping cancelled
    /// entries. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.wheel.pop().map(|(at, key, event)| ScheduledEvent {
            at: SimTime::from_nanos(at),
            id: EventId(key.to_raw()),
            event,
        })
    }

    /// Firing time of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.wheel.peek().map(SimTime::from_nanos)
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.wheel.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.wheel.is_empty()
    }

    /// Operational counters: depth, lifetime schedule/cancel totals, wheel
    /// cascades and compactions.
    pub fn stats(&self) -> QueueStats {
        self.wheel.stats()
    }

    #[cfg(test)]
    fn stored_entries(&self) -> usize {
        self.wheel.stored_entries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        let b = q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().id, b);
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_after_fire_does_not_disturb_later_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        let fired = q.pop().unwrap();
        assert_eq!(fired.id, a);
        assert!(!q.cancel(a), "cancelling a fired event reports false");
        let b = q.schedule(t(2), "b");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().id, b);
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(99)));
    }

    #[test]
    fn stale_id_does_not_cancel_reused_slot() {
        // After an event fires, its arena slot is reused by the next
        // schedule; the old handle must not be able to kill the new event.
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        assert_eq!(q.pop().unwrap().id, a);
        let b = q.schedule(t(2), "b");
        assert!(!q.cancel(a), "stale handle must miss");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().id, b);
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(5), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(5)));
        assert_eq!(q.pop().unwrap().event, "b");
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn schedule_behind_peeked_time_still_pops_first() {
        // Peeking may advance the wheel cursor past the head event's slot;
        // a subsequent schedule at an earlier time must still pop first.
        let mut q = EventQueue::new();
        q.schedule(t(10), "later");
        assert_eq!(q.peek_time(), Some(t(10)));
        q.schedule(t(2), "earlier");
        assert_eq!(q.pop().unwrap().event, "earlier");
        assert_eq!(q.pop().unwrap().event, "later");
    }

    #[test]
    fn interleaved_schedule_pop_cancel() {
        let mut q = EventQueue::new();
        let mut popped = Vec::new();
        let a = q.schedule(t(10), 10);
        q.schedule(t(1), 1);
        popped.push(q.pop().unwrap().event);
        q.schedule(t(5), 5);
        q.cancel(a);
        q.schedule(t(7), 7);
        while let Some(e) = q.pop() {
            popped.push(e.event);
        }
        assert_eq!(popped, vec![1, 5, 7]);
    }

    #[test]
    fn stats_track_queue_activity() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        q.cancel(a);
        let s = q.stats();
        assert_eq!(s.depth, 1);
        assert_eq!(s.scheduled, 2);
        assert_eq!(s.cancelled, 1);
    }

    #[test]
    fn pop_after_10k_cancels_stays_correct() {
        // Tombstone compaction: bury 10k cancelled timers around a handful
        // of survivors and check pops still come out in time order, with
        // stored entries compacted well below the tombstone count.
        let mut q = EventQueue::new();
        let mut survivors = Vec::new();
        for i in 0u64..10_500 {
            let id = q.schedule(t(1 + (i * 7) % 10_000), i);
            if i % 21 == 0 {
                survivors.push(i);
            } else {
                assert!(q.cancel(id));
            }
        }
        assert_eq!(q.len(), survivors.len());
        assert!(
            q.stored_entries() < 2_000,
            "compaction should have pruned tombstones, stored {}",
            q.stored_entries()
        );
        let mut popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(popped.len(), survivors.len());
        popped.sort_unstable();
        survivors.sort_unstable();
        assert_eq!(popped, survivors);
        assert!(q.is_empty());
        // The queue keeps working after the storm.
        q.schedule(t(1), 424_242);
        assert_eq!(q.pop().map(|e| e.event), Some(424_242));
    }
}
