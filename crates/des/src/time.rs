//! Virtual-time newtypes.
//!
//! Simulated time is kept in integer nanoseconds so that event ordering is
//! exact and runs are bit-for-bit reproducible; floating point only appears
//! at the measurement boundary (`as_secs_f64` and friends).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the run.
///
/// ```rust
/// use gage_des::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(10);
/// assert_eq!(t.as_micros(), 10_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// ```rust
/// use gage_des::SimDuration;
/// let d = SimDuration::from_micros(56) + SimDuration::from_nanos(700);
/// assert_eq!(d.as_nanos(), 56_700);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw nanoseconds since the start of the run.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Builds an instant from whole seconds since the start of the run.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Builds an instant from whole milliseconds since the start of the run.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Nanoseconds since the start of the run.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the start of the run (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since the start of the run (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the start of the run, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is in
    /// the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span; used as an "infinite" timeout.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a span from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a span from fractional seconds, rounding to the nearest
    /// nanosecond and saturating on overflow or negative input.
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns.round() as u64)
        }
    }

    /// The span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The span in milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The span in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked subtraction, returning `None` on underflow.
    pub fn checked_sub(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(other.0).map(SimDuration)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Scales the span by a non-negative float, saturating on overflow.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Elapsed time between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when the ordering is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self >= rhs, "SimDuration subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimTime::from_millis(1).as_nanos(), 1_000_000);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_secs(1);
        let d = SimDuration::from_millis(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn saturating_since_handles_future() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
    }

    #[test]
    fn from_secs_f64_edges() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1_500);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn mul_div_scale() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_millis(5));
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }
}
