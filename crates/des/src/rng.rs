//! Seeded, splittable random streams.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random stream.
///
/// Each simulation component should own its own `SimRng`, obtained via
/// [`SimRng::split`], so that adding randomness consumption in one component
/// does not perturb the sequence seen by another (a classic source of
/// irreproducible simulations).
///
/// ```rust
/// use gage_des::SimRng;
/// use rand::RngCore;
/// let mut root = SimRng::seed_from(7);
/// let mut a = root.split("clients");
/// let mut b = root.split("disk");
/// // Independent deterministic streams:
/// let xs: Vec<u64> = (0..3).map(|_| a.next_u64()).collect();
/// let mut a2 = SimRng::seed_from(7).split("clients");
/// let xs2: Vec<u64> = (0..3).map(|_| a2.next_u64()).collect();
/// assert_eq!(xs, xs2);
/// let _ = b.next_u64();
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a stream from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream named by `label`.
    ///
    /// The child seed depends on the parent seed and the label but not on
    /// how much randomness the parent has already consumed after this call,
    /// so splits should be performed up front during model construction.
    pub fn split(&mut self, label: &str) -> SimRng {
        // FNV-1a over the label mixed with fresh parent entropy.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let seed = h ^ self.inner.gen::<u64>();
        SimRng::seed_from(seed)
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// Uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over empty domain");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with probability `p` of returning `true`
    /// (`p` is clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Exponentially distributed value with the given mean (inverse rate).
    /// Returns 0 for a non-positive mean.
    pub fn exp(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // Inverse-CDF; 1-u avoids ln(0).
        -mean * (1.0 - self.f64()).ln()
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_differ() {
        let mut root = SimRng::seed_from(1);
        let mut a = root.split("a");
        let mut root2 = SimRng::seed_from(1);
        let mut b = root2.split("b");
        // Overwhelmingly likely to differ immediately.
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn exp_has_roughly_correct_mean() {
        let mut rng = SimRng::seed_from(99);
        let n = 20_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| rng.exp(mean)).sum();
        let sample_mean = sum / n as f64;
        assert!(
            (sample_mean - mean).abs() < 0.2,
            "sample mean {sample_mean} too far from {mean}"
        );
    }

    #[test]
    fn exp_nonpositive_mean_is_zero() {
        let mut rng = SimRng::seed_from(4);
        assert_eq!(rng.exp(0.0), 0.0);
        assert_eq!(rng.exp(-3.0), 0.0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(rng.chance(2.0), "clamped above 1");
        assert!(!rng.chance(-1.0), "clamped below 0");
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SimRng::seed_from(6);
        for _ in 0..1000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let i = rng.index(7);
            assert!(i < 7);
        }
    }
}
