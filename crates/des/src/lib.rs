//! Deterministic discrete-event simulation kernel.
//!
//! `gage-des` is the substrate on which the packet-accurate Gage cluster
//! simulation (`gage-cluster`) runs. It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time
//!   newtypes with saturating arithmetic,
//! * [`EventQueue`] — a cancellable priority queue of timestamped events with
//!   deterministic FIFO tie-breaking,
//! * [`Simulation`] — the engine driving a user [`Model`] until a deadline or
//!   until the event queue drains,
//! * [`SimRng`] — seeded, splittable random streams so that independent
//!   components draw from independent deterministic sequences,
//! * [`stats`] — counters, rate meters, time-weighted gauges, windowed series
//!   and log-bucket histograms used by the evaluation harnesses.
//!
//! # Example
//!
//! ```rust
//! use gage_des::{Model, Context, Simulation, SimDuration};
//!
//! struct Ping { count: u32 }
//! enum Ev { Tick }
//!
//! impl Model for Ping {
//!     type Event = Ev;
//!     fn handle(&mut self, ctx: &mut Context<'_, Ev>, _ev: Ev) {
//!         self.count += 1;
//!         if self.count < 10 {
//!             ctx.schedule_in(SimDuration::from_millis(1), Ev::Tick);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Ping { count: 0 }, 42);
//! sim.schedule_in(SimDuration::ZERO, Ev::Tick);
//! sim.run();
//! assert_eq!(sim.model().count, 10);
//! assert_eq!(sim.now().as_millis(), 9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod event;
mod rng;
pub mod stats;
mod time;
mod wheel;

pub use engine::{Context, Model, Simulation};
pub use event::{EventId, EventQueue, ScheduledEvent};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use wheel::QueueStats;
