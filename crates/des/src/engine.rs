//! The simulation engine: drives a [`Model`] through its event queue.

use crate::event::{EventId, EventQueue};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::wheel::QueueStats;

/// A simulation model: owns all mutable world state and reacts to events.
///
/// The engine pops the earliest event, advances the clock, and calls
/// [`Model::handle`], which may schedule or cancel further events through the
/// [`Context`].
pub trait Model {
    /// The event payload type (typically one enum covering the whole world).
    type Event;

    /// Reacts to `event` firing at `ctx.now()`.
    fn handle(&mut self, ctx: &mut Context<'_, Self::Event>, event: Self::Event);
}

/// Scheduling capabilities handed to [`Model::handle`].
#[derive(Debug)]
pub struct Context<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    rng: &'a mut SimRng,
    logical: &'a mut u64,
}

impl<'a, E> Context<'a, E> {
    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay` from now.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventId {
        self.queue.schedule(self.now + delay, event)
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// An instant in the past is clamped to *now*: the event fires next,
    /// after already-queued events at the current instant.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        self.queue.schedule(at.max(self.now), event)
    }

    /// Cancels a pending event; `true` if it had not yet fired.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// The engine's deterministic random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Credits `n` logical events to the engine's processed-event count.
    ///
    /// Batched handlers (e.g. a struct-of-arrays pass that retires a whole
    /// scheduling cycle's worth of per-packet work inside one physical
    /// event) use this so `events_processed` keeps measuring simulated
    /// work, not dispatch overhead.
    pub fn count_logical(&mut self, n: u64) {
        *self.logical += n;
    }

    /// Operational counters of the underlying event queue.
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }
}

/// The discrete-event simulation engine.
///
/// ```rust
/// use gage_des::{Model, Context, Simulation, SimDuration, SimTime};
///
/// struct Counter { fired: Vec<u64> }
/// struct At(u64);
///
/// impl Model for Counter {
///     type Event = At;
///     fn handle(&mut self, ctx: &mut Context<'_, At>, ev: At) {
///         self.fired.push(ev.0);
///         assert_eq!(ctx.now().as_millis(), ev.0);
///     }
/// }
///
/// let mut sim = Simulation::new(Counter { fired: vec![] }, 1);
/// sim.schedule_at(SimTime::from_millis(2), At(2));
/// sim.schedule_at(SimTime::from_millis(1), At(1));
/// sim.run_until(SimTime::from_millis(10));
/// assert_eq!(sim.model().fired, vec![1, 2]);
/// ```
#[derive(Debug)]
pub struct Simulation<M: Model> {
    model: M,
    queue: EventQueue<M::Event>,
    rng: SimRng,
    now: SimTime,
    events_processed: u64,
    logical_events: u64,
}

impl<M: Model> Simulation<M> {
    /// Creates an engine around `model` with the given RNG seed.
    pub fn new(model: M, seed: u64) -> Self {
        Simulation {
            model,
            queue: EventQueue::new(),
            rng: SimRng::seed_from(seed),
            now: SimTime::ZERO,
            events_processed: 0,
            logical_events: 0,
        }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events handled so far: physical pops plus logical events
    /// credited by batched handlers via [`Context::count_logical`].
    pub fn events_processed(&self) -> u64 {
        self.events_processed + self.logical_events
    }

    /// Operational counters of the underlying event queue.
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// Shared access to the model (for inspection between runs).
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Exclusive access to the model (for reconfiguration between runs).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// The engine's root random stream (e.g. for splitting per-component
    /// streams during setup).
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Schedules an event from outside the model (setup code).
    pub fn schedule_at(&mut self, at: SimTime, event: M::Event) -> EventId {
        self.queue.schedule(at.max(self.now), event)
    }

    /// Schedules an event `delay` after the current instant.
    pub fn schedule_in(&mut self, delay: SimDuration, event: M::Event) -> EventId {
        self.queue.schedule(self.now + delay, event)
    }

    /// Processes the single earliest event, if any. Returns `false` when the
    /// queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(scheduled) = self.queue.pop() else {
            return false;
        };
        debug_assert!(scheduled.at >= self.now, "time ran backwards");
        self.now = scheduled.at;
        self.events_processed += 1;
        let mut ctx = Context {
            now: self.now,
            queue: &mut self.queue,
            rng: &mut self.rng,
            logical: &mut self.logical_events,
        };
        self.model.handle(&mut ctx, scheduled.event);
        true
    }

    /// Runs until the event queue drains.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the queue drains or the next event would fire after
    /// `deadline`. The clock is left at the later of its current value and
    /// `deadline` only if events reached it; otherwise it stays at the last
    /// event time.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            match self.queue.peek_time() {
                Some(t) if t <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.now < deadline && !self.queue.is_empty() {
            // Advance the clock to the deadline so back-to-back run_until
            // calls observe contiguous windows.
            self.now = deadline;
        }
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Chain {
        hops: u32,
        done_at: Option<SimTime>,
    }
    enum Ev {
        Hop(u32),
    }

    impl Model for Chain {
        type Event = Ev;
        fn handle(&mut self, ctx: &mut Context<'_, Ev>, Ev::Hop(n): Ev) {
            if n < self.hops {
                ctx.schedule_in(SimDuration::from_micros(100), Ev::Hop(n + 1));
            } else {
                self.done_at = Some(ctx.now());
            }
        }
    }

    #[test]
    fn chain_of_events_advances_clock() {
        let mut sim = Simulation::new(
            Chain {
                hops: 50,
                done_at: None,
            },
            0,
        );
        sim.schedule_at(SimTime::ZERO, Ev::Hop(0));
        sim.run();
        assert_eq!(
            sim.model().done_at,
            Some(SimTime::ZERO + SimDuration::from_micros(100) * 50)
        );
        assert_eq!(sim.events_processed(), 51);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulation::new(
            Chain {
                hops: 1_000_000,
                done_at: None,
            },
            0,
        );
        sim.schedule_at(SimTime::ZERO, Ev::Hop(0));
        sim.run_until(SimTime::from_millis(1));
        assert!(sim.now() <= SimTime::from_millis(1));
        assert!(sim.model().done_at.is_none());
        assert!(sim.pending_events() > 0);
        // Resume.
        sim.run_until(SimTime::from_millis(2));
        assert!(sim.now() <= SimTime::from_millis(2));
    }

    #[test]
    fn deterministic_across_runs() {
        fn run_once() -> u64 {
            struct R {
                acc: u64,
            }
            enum E {
                T,
            }
            impl Model for R {
                type Event = E;
                fn handle(&mut self, ctx: &mut Context<'_, E>, _e: E) {
                    self.acc = self.acc.wrapping_mul(31).wrapping_add(ctx.rng().next_u64());
                    if !self.acc.is_multiple_of(7) {
                        ctx.schedule_in(SimDuration::from_nanos(self.acc % 1000 + 1), E::T);
                    }
                }
            }
            use rand::RngCore;
            let mut sim = Simulation::new(R { acc: 1 }, 77);
            sim.schedule_at(SimTime::ZERO, E::T);
            sim.run_until(SimTime::from_millis(1));
            sim.model().acc
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn schedule_in_past_clamps_to_now() {
        struct P {
            seen: Vec<u64>,
        }
        enum E {
            A,
            B,
        }
        impl Model for P {
            type Event = E;
            fn handle(&mut self, ctx: &mut Context<'_, E>, e: E) {
                match e {
                    E::A => {
                        self.seen.push(ctx.now().as_millis());
                        // Deliberately in the past.
                        ctx.schedule_at(SimTime::ZERO, E::B);
                    }
                    E::B => self.seen.push(ctx.now().as_millis()),
                }
            }
        }
        let mut sim = Simulation::new(P { seen: vec![] }, 0);
        sim.schedule_at(SimTime::from_millis(5), E::A);
        sim.run();
        assert_eq!(sim.model().seen, vec![5, 5]);
    }
}
