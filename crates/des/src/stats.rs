//! Measurement utilities: binned time series, histograms, running moments
//! and busy-time tracking.
//!
//! These are the instruments the evaluation harnesses use to turn raw
//! simulation events into the paper's tables and figures (served/dropped
//! rates, deviation-from-reservation, CPU utilization, latency quantiles).

use crate::time::{SimDuration, SimTime};

/// A time series accumulated into fixed-width bins.
///
/// Values recorded at time `t` are added to bin `t / bin_width`. The series
/// can later be re-aggregated over any averaging interval that is a multiple
/// of the bin width — exactly what Figure 3's deviation-vs-averaging-interval
/// sweep needs.
///
/// ```rust
/// use gage_des::stats::BinnedSeries;
/// use gage_des::{SimDuration, SimTime};
/// let mut s = BinnedSeries::new(SimDuration::from_millis(100));
/// s.record(SimTime::from_millis(50), 1.0);
/// s.record(SimTime::from_millis(150), 2.0);
/// s.record(SimTime::from_millis(160), 3.0);
/// assert_eq!(s.bins(), &[1.0, 5.0]);
/// ```
#[derive(Debug, Clone)]
pub struct BinnedSeries {
    bin_width: SimDuration,
    bins: Vec<f64>,
}

impl BinnedSeries {
    /// Creates a series with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is zero.
    pub fn new(bin_width: SimDuration) -> Self {
        assert!(!bin_width.is_zero(), "bin width must be positive");
        BinnedSeries {
            bin_width,
            bins: Vec::new(),
        }
    }

    /// The configured bin width.
    pub fn bin_width(&self) -> SimDuration {
        self.bin_width
    }

    /// Adds `value` to the bin containing instant `t`.
    pub fn record(&mut self, t: SimTime, value: f64) {
        let idx = (t.as_nanos() / self.bin_width.as_nanos()) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0.0);
        }
        self.bins[idx] += value;
    }

    /// The raw per-bin sums.
    pub fn bins(&self) -> &[f64] {
        &self.bins
    }

    /// Sum of all recorded values.
    pub fn total(&self) -> f64 {
        self.bins.iter().sum()
    }

    /// Re-aggregates into windows of `bins_per_window` consecutive bins,
    /// returning the per-window sums. A trailing partial window is dropped,
    /// so every reported window covers a full interval.
    ///
    /// # Panics
    ///
    /// Panics if `bins_per_window` is zero.
    pub fn window_sums(&self, bins_per_window: usize) -> Vec<f64> {
        assert!(bins_per_window > 0, "window must span at least one bin");
        self.bins
            .chunks_exact(bins_per_window)
            .map(|w| w.iter().sum())
            .collect()
    }

    /// Per-window *rates*: window sums divided by the window length in
    /// seconds. See [`BinnedSeries::window_sums`].
    pub fn window_rates(&self, bins_per_window: usize) -> Vec<f64> {
        let window_secs = self.bin_width.as_secs_f64() * bins_per_window as f64;
        self.window_sums(bins_per_window)
            .into_iter()
            .map(|s| s / window_secs)
            .collect()
    }
}

/// Mean absolute relative deviation of a sequence of observed rates from a
/// target rate, in percent — the metric plotted in the paper's Figure 3.
///
/// Returns `None` if `observed` is empty or `target` is not positive.
pub fn deviation_pct(observed: &[f64], target: f64) -> Option<f64> {
    if observed.is_empty() || target <= 0.0 {
        return None;
    }
    let sum: f64 = observed.iter().map(|o| (o - target).abs() / target).sum();
    Some(100.0 * sum / observed.len() as f64)
}

/// Running mean and variance (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct MeanVar {
    n: u64,
    mean: f64,
    m2: f64,
}

impl MeanVar {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Histogram of durations with logarithmic buckets (powers of two in
/// nanoseconds), supporting approximate quantiles.
#[derive(Debug, Clone)]
pub struct DurationHistogram {
    // bucket i counts durations with floor(log2(ns)) == i (ns==0 -> bucket 0)
    buckets: [u64; 64],
    count: u64,
    sum: SimDuration,
    max: SimDuration,
}

impl Default for DurationHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl DurationHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        DurationHistogram {
            buckets: [0; 64],
            count: 0,
            sum: SimDuration::ZERO,
            max: SimDuration::ZERO,
        }
    }

    /// Records one duration.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        let idx = if ns == 0 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += d;
        self.max = self.max.max(d);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean duration (zero if empty).
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            self.sum / self.count
        }
    }

    /// Largest recorded duration.
    pub fn max(&self) -> SimDuration {
        self.max
    }

    /// Approximate quantile (bucket upper bound containing the q-quantile).
    /// `q` is clamped to `[0, 1]`. Returns zero if empty.
    pub fn quantile(&self, q: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
                return SimDuration::from_nanos(upper);
            }
        }
        self.max
    }
}

/// Accumulates busy time for a serially-used resource (e.g. the RDN CPU) so
/// utilization can be reported over arbitrary spans, and per-bin so a
/// utilization-vs-time curve can be extracted.
#[derive(Debug, Clone)]
pub struct BusyTracker {
    series: BinnedSeries,
    total_busy: SimDuration,
}

impl BusyTracker {
    /// Creates a tracker binning busy time at `bin_width`.
    pub fn new(bin_width: SimDuration) -> Self {
        BusyTracker {
            series: BinnedSeries::new(bin_width),
            total_busy: SimDuration::ZERO,
        }
    }

    /// Charges `busy` of work done at instant `t`.
    ///
    /// The charge is attributed entirely to `t`'s bin, which is accurate as
    /// long as individual work items are much shorter than the bin width
    /// (true here: µs-scale work vs. ≥100 ms bins).
    pub fn add(&mut self, t: SimTime, busy: SimDuration) {
        self.series.record(t, busy.as_secs_f64());
        self.total_busy += busy;
    }

    /// Total busy time charged so far.
    pub fn total_busy(&self) -> SimDuration {
        self.total_busy
    }

    /// Overall utilization in `[0, 1]` across `elapsed` of wall time.
    /// Returns 0 for a zero elapsed span.
    pub fn utilization(&self, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            (self.total_busy.as_secs_f64() / elapsed.as_secs_f64()).min(1.0)
        }
    }

    /// Per-bin utilization in `[0, 1]`.
    pub fn per_bin_utilization(&self) -> Vec<f64> {
        let w = self.series.bin_width().as_secs_f64();
        self.series
            .bins()
            .iter()
            .map(|b| (b / w).min(1.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binned_series_window_sums_and_rates() {
        let mut s = BinnedSeries::new(SimDuration::from_millis(500));
        // 4 full bins: 1, 2, 3, 4 plus one trailing partial.
        for (ms, v) in [(0, 1.0), (600, 2.0), (1100, 3.0), (1900, 4.0), (2100, 9.0)] {
            s.record(SimTime::from_millis(ms), v);
        }
        assert_eq!(s.window_sums(2), vec![3.0, 7.0]); // 1s windows, partial dropped
        assert_eq!(s.window_rates(2), vec![3.0, 7.0]); // per-second
        assert_eq!(s.total(), 19.0);
    }

    #[test]
    fn deviation_pct_basic() {
        let d = deviation_pct(&[90.0, 110.0], 100.0).unwrap();
        assert!((d - 10.0).abs() < 1e-9);
        assert_eq!(deviation_pct(&[], 100.0), None);
        assert_eq!(deviation_pct(&[1.0], 0.0), None);
    }

    #[test]
    fn deviation_pct_can_exceed_100() {
        // Alternating 0 / 2x target, as in the paper's 2s-cycle/1s-interval
        // data point.
        let d = deviation_pct(&[0.0, 200.0, 0.0, 200.0], 100.0).unwrap();
        assert!((d - 100.0).abs() < 1e-9);
    }

    #[test]
    fn meanvar_matches_closed_form() {
        let mut mv = MeanVar::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            mv.push(x);
        }
        assert!((mv.mean() - 5.0).abs() < 1e-12);
        assert!((mv.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(mv.count(), 8);
    }

    #[test]
    fn histogram_quantiles_bracket_values() {
        let mut h = DurationHistogram::new();
        for us in 1..=1000u64 {
            h.record(SimDuration::from_micros(us));
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5);
        // Median is 500us; bucket upper bound must be >= that and within 2x.
        assert!(p50 >= SimDuration::from_micros(500));
        assert!(p50 <= SimDuration::from_micros(1024));
        assert_eq!(h.max(), SimDuration::from_micros(1000));
        assert!(h.mean() > SimDuration::from_micros(400));
        assert!(h.mean() < SimDuration::from_micros(600));
    }

    #[test]
    fn histogram_empty_and_zero() {
        let mut h = DurationHistogram::new();
        assert_eq!(h.quantile(0.9), SimDuration::ZERO);
        h.record(SimDuration::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), SimDuration::ZERO);
    }

    #[test]
    fn busy_tracker_utilization() {
        let mut b = BusyTracker::new(SimDuration::from_millis(100));
        // 30ms busy in the first 100ms bin, 60ms in the second.
        b.add(SimTime::from_millis(10), SimDuration::from_millis(30));
        b.add(SimTime::from_millis(150), SimDuration::from_millis(60));
        let u = b.per_bin_utilization();
        assert!((u[0] - 0.3).abs() < 1e-9);
        assert!((u[1] - 0.6).abs() < 1e-9);
        assert!((b.utilization(SimDuration::from_millis(200)) - 0.45).abs() < 1e-9);
        assert_eq!(b.utilization(SimDuration::ZERO), 0.0);
    }
}
