//! Hierarchical timing wheel backing the [`EventQueue`](crate::EventQueue).
//!
//! Six levels of 64 slots each cover the nanosecond clock: level 0 buckets
//! 2^10 ns (~1 µs, fine enough that the 10 ms scheduling cycle spans ~9.8 k
//! fine slots), and each coarser level covers 64× the span of the one below
//! (shifts 10/16/22/28/34/40, top span ≈ 19.5 h). Events beyond the top
//! level park in an overflow list and redistribute when the clock nears
//! them.
//!
//! Determinism contract (the reason this exists instead of `BinaryHeap`):
//!
//! * **Pop order** is exactly `(at, seq)` — the same total order the heap
//!   implementation used. Events ahead of the cursor live in wheel slots;
//!   the slot with the smallest start time is drained next, and a drained
//!   fine slot is sorted by `(at, seq)` into the `front` run before
//!   anything pops. Slot starts at every level are multiples of the fine
//!   granularity, so no coarser slot can start strictly inside the fine
//!   slot being drained — the minimum-start scan never skips an event.
//! * **Cascades terminate**: when a coarse slot (level *l* > 0) wins the
//!   scan, the cursor first advances to that slot's start; adjacent levels
//!   differ by 6 bits of shift, so every event in the slot then lands at
//!   level ≤ *l* − 1. Each event re-places through strictly finer levels
//!   until it reaches level 0.
//! * **Liveness** is the same generational [`Slab`] discipline the heap
//!   used, with identical insert/remove ordering — so the handles
//!   ([`SlabKey`]s, packed into `EventId`s) a run hands out are identical
//!   to what the heap implementation would have produced.
//!
//! Cancellation stays O(1): remove the slab entry and leave the stored
//! record behind as a tombstone; tombstones are dropped when their slot
//! drains or cascades, and a compaction sweep prunes them early if they
//! come to dominate storage.

use std::collections::VecDeque;

use gage_collections::{Slab, SlabKey};

/// Number of wheel levels.
const LEVELS: usize = 6;
/// Slots per level (fixed 64 so occupancy fits one `u64` bitmap).
const SLOTS: usize = 64;
const SLOT_MASK: u64 = 63;
/// Bit shift from nanoseconds to slot index, per level. Adjacent levels
/// differ by exactly 6 bits (= log2 SLOTS), which is what guarantees a
/// cascading event always lands at a strictly finer level.
const SHIFTS: [u32; LEVELS] = [10, 16, 22, 28, 34, 40];
/// Span of one level-0 slot in nanoseconds.
const GRANULARITY: u64 = 1 << SHIFTS[0];

/// Operational counters for the event queue, exposed through the gage-obs
/// registry and `tracedump --stats` so wheel behavior is visible in the
/// existing observability output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Pending (scheduled, not yet fired or cancelled) events.
    pub depth: u64,
    /// Total events ever scheduled.
    pub scheduled: u64,
    /// Total events cancelled before firing.
    pub cancelled: u64,
    /// Coarse-slot redistributions (including overflow redistributions).
    pub cascades: u64,
    /// Tombstone compaction sweeps.
    pub compactions: u64,
}

#[derive(Debug)]
struct Entry<E> {
    /// Firing time in nanoseconds.
    at: u64,
    /// Monotonic schedule order, the deterministic FIFO tie-break.
    seq: u64,
    /// Liveness handle; a key that no longer resolves marks a tombstone.
    key: SlabKey,
    event: E,
}

#[derive(Debug)]
struct Level<E> {
    slots: Vec<Vec<Entry<E>>>,
    /// Bit *i* set ⇔ `slots[i]` is non-empty.
    occ: u64,
}

impl<E> Level<E> {
    fn new() -> Self {
        Level {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            occ: 0,
        }
    }
}

/// The wheel proper. [`EventQueue`](crate::EventQueue) wraps this with the
/// `SimTime`/`EventId` surface.
#[derive(Debug)]
pub(crate) struct TimingWheel<E> {
    levels: Vec<Level<E>>,
    /// Sorted `(at, seq)` run of events that fire before `cursor`; pops
    /// come from here. Refilled by draining the next occupied slot.
    front: VecDeque<Entry<E>>,
    /// Events beyond the top level's horizon.
    overflow: Vec<Entry<E>>,
    overflow_min: u64,
    /// Wheel time floor: every stored (non-front) event fires at or after
    /// this instant. Always a multiple of [`GRANULARITY`].
    cursor: u64,
    /// One live marker per pending event; same insert/remove ordering as
    /// the old heap implementation, so handles are bit-identical.
    live: Slab<()>,
    /// Tombstones currently buried in storage.
    tombs: usize,
    /// Entry records currently held across front/slots/overflow. Kept
    /// exactly equal to [`stored_entries`](Self::stored_entries) so the
    /// compaction trigger is O(1) per cancel instead of a 384-slot walk.
    stored: usize,
    /// Recycled slot buffer: drains swap a slot's `Vec` against this so
    /// neither side ever gives its capacity back to the allocator.
    scratch: Vec<Entry<E>>,
    next_seq: u64,
    scheduled_total: u64,
    cancelled_total: u64,
    cascades: u64,
    compactions: u64,
}

impl<E> TimingWheel<E> {
    pub(crate) fn new() -> Self {
        TimingWheel {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            front: VecDeque::new(),
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            cursor: 0,
            live: Slab::new(),
            tombs: 0,
            stored: 0,
            scratch: Vec::new(),
            next_seq: 0,
            scheduled_total: 0,
            cancelled_total: 0,
            cascades: 0,
            compactions: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.live.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    pub(crate) fn stats(&self) -> QueueStats {
        debug_assert_eq!(self.stored, self.stored_entries());
        QueueStats {
            depth: self.live.len() as u64,
            scheduled: self.scheduled_total,
            cancelled: self.cancelled_total,
            cascades: self.cascades,
            compactions: self.compactions,
        }
    }

    /// Stored records including tombstones — what compaction bounds.
    pub(crate) fn stored_entries(&self) -> usize {
        self.front.len()
            + self.overflow.len()
            + self
                .levels
                .iter()
                .map(|l| l.slots.iter().map(Vec::len).sum::<usize>())
                .sum::<usize>()
    }

    pub(crate) fn schedule(&mut self, at: u64, event: E) -> SlabKey {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        let key = self.live.insert(());
        self.place(Entry {
            at,
            seq,
            key,
            event,
        });
        key
    }

    pub(crate) fn cancel(&mut self, key: SlabKey) -> bool {
        if self.live.remove(key).is_none() {
            return false;
        }
        self.tombs += 1;
        self.cancelled_total += 1;
        self.maybe_compact();
        true
    }

    pub(crate) fn pop(&mut self) -> Option<(u64, SlabKey, E)> {
        loop {
            if let Some(e) = self.front.pop_front() {
                self.stored -= 1;
                if self.live.remove(e.key).is_some() {
                    return Some((e.at, e.key, e.event));
                }
                self.tombs = self.tombs.saturating_sub(1);
                continue;
            }
            if !self.advance() {
                return None;
            }
        }
    }

    pub(crate) fn peek(&mut self) -> Option<u64> {
        loop {
            if let Some(e) = self.front.front() {
                if self.live.contains(e.key) {
                    return Some(e.at);
                }
                self.front.pop_front();
                self.stored -= 1;
                self.tombs = self.tombs.saturating_sub(1);
                continue;
            }
            if !self.advance() {
                return None;
            }
        }
    }

    /// Routes an entry to the front run, a wheel slot, or overflow.
    fn place(&mut self, e: Entry<E>) {
        self.stored += 1;
        if e.at < self.cursor {
            // Late insert (schedule into the already-drained window, e.g.
            // after `peek` advanced the cursor): keep the front run sorted.
            // The new entry carries the largest seq, so partitioning on
            // `at` alone lands it after every equal-time sibling.
            let pos = self.front.partition_point(|f| f.at <= e.at);
            self.front.insert(pos, e);
            return;
        }
        for (l, &shift) in SHIFTS.iter().enumerate() {
            if (e.at >> shift) - (self.cursor >> shift) < SLOTS as u64 {
                let idx = ((e.at >> shift) & SLOT_MASK) as usize;
                let level = &mut self.levels[l];
                level.slots[idx].push(e);
                level.occ |= 1 << idx;
                return;
            }
        }
        self.overflow_min = self.overflow_min.min(e.at);
        self.overflow.push(e);
    }

    /// Drains or cascades the occupied slot with the smallest start time.
    /// Returns `false` when nothing is stored anywhere (queue exhausted).
    fn advance(&mut self) -> bool {
        // Find the minimum slot start across all levels. On a tie, the
        // COARSER level must go first: its slot spans the finer one, so
        // its events may fire inside the finer slot's window and have to
        // redistribute before that window is drained and sealed.
        let mut best: Option<(u64, usize)> = None;
        for (l, level) in self.levels.iter().enumerate() {
            if level.occ == 0 {
                continue;
            }
            let shift = SHIFTS[l];
            let base = (self.cursor >> shift) & SLOT_MASK;
            let dist = level.occ.rotate_right(base as u32).trailing_zeros() as u64;
            let start = ((self.cursor >> shift) + dist) << shift;
            match best {
                Some((bs, _)) if bs <= start => {}
                _ => best = Some((start, l)),
            }
        }
        if !self.overflow.is_empty() {
            let start = self.overflow_min & !(GRANULARITY - 1);
            match best {
                Some((bs, _)) if bs <= start => {}
                _ => best = Some((start, LEVELS)),
            }
        }
        let Some((start, l)) = best else {
            return false;
        };

        // Every branch swaps the drained store against `scratch` instead of
        // `std::mem::take`-ing it, so slot buffers keep their capacity and a
        // steady-state run stops touching the allocator entirely.
        let mut batch = std::mem::take(&mut self.scratch);
        if l == LEVELS {
            // Overflow redistribution: the clock has caught up with the
            // parked horizon. The earliest parked event now fits the top
            // level (the cursor's high bits match its own), so this makes
            // progress even if most of the list parks again.
            self.cascades += 1;
            self.cursor = self.cursor.max(start);
            std::mem::swap(&mut batch, &mut self.overflow);
            self.overflow_min = u64::MAX;
            self.stored -= batch.len();
            self.replace_live(&mut batch);
        } else if l > 0 {
            // Coarse slot: advance the cursor to the slot start, then
            // redistribute. With the cursor at the slot start every event
            // in it is within 64 slots of the cursor at level l−1, so each
            // lands at a strictly finer level — the cascade terminates.
            self.cascades += 1;
            self.cursor = self.cursor.max(start);
            let idx = ((start >> SHIFTS[l]) & SLOT_MASK) as usize;
            if let Some(level) = self.levels.get_mut(l) {
                std::mem::swap(&mut batch, &mut level.slots[idx]);
                level.occ &= !(1 << idx);
            }
            self.stored -= batch.len();
            self.replace_live(&mut batch);
        } else {
            // Fine slot: everything in [start, start + GRANULARITY) fires
            // before anything still stored (no coarser slot can start
            // inside this window — all slot starts are multiples of the
            // fine granularity). Sort by (at, seq) and seal the window.
            let idx = ((start / GRANULARITY) & SLOT_MASK) as usize;
            self.cursor = self.cursor.max(start + GRANULARITY);
            if let Some(fine) = self.levels.first_mut() {
                std::mem::swap(&mut batch, &mut fine.slots[idx]);
                fine.occ &= !(1 << idx);
            }
            batch.retain(|e| {
                let alive = self.live.contains(e.key);
                if !alive {
                    self.tombs = self.tombs.saturating_sub(1);
                    self.stored -= 1;
                }
                alive
            });
            batch.sort_unstable_by_key(|e| (e.at, e.seq));
            self.front.extend(batch.drain(..));
        }
        self.scratch = batch;
        true
    }

    /// Re-places a drained batch, dropping tombstones on the way. Drains in
    /// place so the caller keeps the buffer's capacity for reuse.
    fn replace_live(&mut self, entries: &mut Vec<Entry<E>>) {
        for e in entries.drain(..) {
            if self.live.contains(e.key) {
                self.place(e);
            } else {
                self.tombs = self.tombs.saturating_sub(1);
            }
        }
    }

    /// Prunes tombstones from every store once they dominate it, so a
    /// cancel-heavy workload (timers disarmed by ACKs) cannot grow storage
    /// past a small multiple of the live event count. Relative order within
    /// each store is preserved, so pop order is unaffected.
    fn maybe_compact(&mut self) {
        if self.tombs <= 64 || self.tombs * 2 <= self.stored {
            return;
        }
        let live = &self.live;
        self.front.retain(|e| live.contains(e.key));
        self.overflow.retain(|e| live.contains(e.key));
        self.overflow_min = self.overflow.iter().map(|e| e.at).min().unwrap_or(u64::MAX);
        for level in &mut self.levels {
            if level.occ == 0 {
                continue;
            }
            let mut occ = 0u64;
            for (i, slot) in level.slots.iter_mut().enumerate() {
                slot.retain(|e| live.contains(e.key));
                if !slot.is_empty() {
                    occ |= 1 << i;
                }
            }
            level.occ = occ;
        }
        self.tombs = 0;
        self.stored = self.stored_entries();
        self.compactions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimingWheel<u64>) -> Vec<(u64, u64)> {
        std::iter::from_fn(|| w.pop().map(|(at, _, ev)| (at, ev))).collect()
    }

    #[test]
    fn multi_level_placement_and_cascade() {
        let mut w = TimingWheel::new();
        // One event per level span, plus one in overflow (beyond 2^46 ns).
        let times = [
            1u64 << 9, // level 0
            1 << 15,   // level 1
            1 << 21,   // level 2
            1 << 27,   // level 3
            1 << 33,   // level 4
            1 << 39,   // level 5
            1 << 45,   // level 5 (top span)
            1 << 50,   // overflow
        ];
        for (i, &t) in times.iter().enumerate() {
            w.schedule(t, i as u64);
        }
        assert!(!w.overflow.is_empty(), "far event must park in overflow");
        let popped = drain(&mut w);
        let ats: Vec<u64> = popped.iter().map(|&(at, _)| at).collect();
        assert_eq!(ats, times.to_vec(), "cascades must preserve time order");
        assert!(w.stats().cascades > 0);
    }

    #[test]
    fn same_fine_slot_sorts_by_time_then_seq() {
        let mut w = TimingWheel::new();
        // All inside one level-0 slot, scheduled out of order.
        w.schedule(900, 2);
        w.schedule(100, 0);
        w.schedule(900, 3);
        w.schedule(500, 1);
        let popped: Vec<u64> = drain(&mut w).into_iter().map(|(_, e)| e).collect();
        assert_eq!(popped, vec![0, 1, 2, 3]);
    }

    #[test]
    fn late_insert_lands_in_sorted_front() {
        let mut w = TimingWheel::new();
        w.schedule(10, 0);
        w.schedule(2_000_000, 9);
        // Peeking drains slot 0 into the front and advances the cursor.
        assert_eq!(w.peek(), Some(10));
        // A schedule behind the cursor must still pop in time order.
        w.schedule(5, 100);
        w.schedule(10, 1);
        let popped: Vec<u64> = drain(&mut w).into_iter().map(|(_, e)| e).collect();
        assert_eq!(popped, vec![100, 0, 1, 9]);
    }

    #[test]
    fn overflow_redistributes_when_clock_catches_up() {
        let mut w = TimingWheel::new();
        let far = 1u64 << 50;
        w.schedule(far, 1);
        w.schedule(far + 5, 2);
        w.schedule(3, 0);
        let popped = drain(&mut w);
        assert_eq!(popped, vec![(3, 0), (far, 1), (far + 5, 2)]);
        assert!(w.overflow.is_empty());
    }

    #[test]
    fn compaction_prunes_all_stores() {
        let mut w = TimingWheel::new();
        let mut keys = Vec::new();
        for i in 0..5_000u64 {
            // Spread across levels and overflow.
            keys.push(w.schedule(i * 1_000_003 % (1 << 48), i));
        }
        for k in keys {
            assert!(w.cancel(k));
        }
        assert!(w.is_empty());
        assert!(
            w.stored_entries() < 200,
            "compaction left {} tombstones",
            w.stored_entries()
        );
        assert!(w.stats().compactions > 0);
        w.schedule(7, 42);
        assert_eq!(w.pop().map(|(_, _, e)| e), Some((7, 42)).map(|x| x.1));
    }
}
