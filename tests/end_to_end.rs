//! Cross-crate integration tests: workload generation feeding the simulated
//! cluster, conservation invariants, failure injection and facade wiring.

use gage::cluster::params::{ClusterParams, ServiceCostModel};
use gage::cluster::sim::{ClusterSim, SiteSpec};
use gage::core::resource::Grps;
use gage::des::{SimDuration, SimTime};
use gage::workload::{ArrivalProcess, SpecWebGenerator, SyntheticGenerator, Trace};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn synthetic_site(host: &str, reservation: f64, rate: f64, horizon: f64, seed: u64) -> SiteSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gen = SyntheticGenerator::new(2_000, 1);
    SiteSpec {
        host: host.to_string(),
        reservation: Grps(reservation),
        trace: Trace::generate(
            host,
            ArrivalProcess::Constant { rate },
            horizon,
            &mut gen,
            &mut rng,
        ),
    }
}

#[test]
fn conservation_offered_equals_served_plus_dropped_plus_inflight() {
    // Run to quiescence: after the trace ends, everything offered must be
    // accounted for as served or dropped (nothing lost in the pipes).
    let horizon = 10.0;
    let sites = vec![
        synthetic_site("a.example.com", 100.0, 150.0, horizon, 1),
        synthetic_site("b.example.com", 50.0, 300.0, horizon, 2),
    ];
    let offered_counts: Vec<u64> = sites.iter().map(|s| s.trace.len() as u64).collect();
    let params = ClusterParams {
        rpn_count: 2,
        service: ServiceCostModel::generic_requests(),
        ..Default::default()
    };
    let mut sim = ClusterSim::new(params, sites, 7);
    // Far past the trace end so every queue drains.
    sim.run_until(SimTime::from_secs(40));
    let w = sim.world();
    for (i, &offered) in offered_counts.iter().enumerate() {
        let served = w.metrics[i].served.total() as u64;
        let dropped = w.metrics[i].dropped.total() as u64;
        assert_eq!(
            served + dropped,
            offered,
            "site {i}: served {served} + dropped {dropped} != offered {offered}"
        );
    }
}

#[test]
fn specweb_trace_round_trips_through_the_cluster() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut gen = SpecWebGenerator::for_target_rate(50.0);
    let trace = Trace::generate(
        "shop.example.com",
        ArrivalProcess::Poisson { rate: 50.0 },
        8.0,
        &mut gen,
        &mut rng,
    );
    // Persist + reload (as the paper's clients do) before replay.
    let mut buf = Vec::new();
    trace.save_json(&mut buf).expect("serializes");
    let trace = Trace::load_json(buf.as_slice()).expect("deserializes");
    let offered = trace.len() as u64;

    let params = ClusterParams {
        rpn_count: 2,
        service: ServiceCostModel::static_files(),
        ..Default::default()
    };
    let site = SiteSpec {
        host: "shop.example.com".to_string(),
        reservation: Grps(500.0),
        trace,
    };
    let mut sim = ClusterSim::new(params, vec![site], 7);
    sim.run_until(SimTime::from_secs(30));
    let w = sim.world();
    let served = w.metrics[0].served.total() as u64;
    assert_eq!(served, offered, "lightly-loaded cluster serves everything");
    // Heavy-tailed sizes actually exercised the disk (cache misses).
    assert!(w.metrics[0].latency.max() > SimDuration::from_millis(5));
}

#[test]
fn unknown_host_requests_are_counted_not_crashed() {
    let horizon = 3.0;
    let mut site = synthetic_site("real.example.com", 100.0, 50.0, horizon, 1);
    // Corrupt half the trace entries to an unregistered host.
    for (i, e) in site.trace.entries.iter_mut().enumerate() {
        if i % 2 == 0 {
            e.host = "ghost.example.com".to_string();
        }
    }
    let offered = site.trace.len() as u64;
    let params = ClusterParams {
        rpn_count: 1,
        service: ServiceCostModel::generic_requests(),
        ..Default::default()
    };
    let mut sim = ClusterSim::new(params, vec![site], 7);
    sim.run_until(SimTime::from_secs(10));
    let w = sim.world();
    assert_eq!(w.unknown_host_drops, offered / 2);
    assert_eq!(w.metrics[0].served.total() as u64, offered - offered / 2);
}

#[test]
fn sub_second_accounting_cycles_do_not_change_total_throughput() {
    // The control loop's staleness changes observation lumpiness and
    // latency, not steady-state service (the reservation pass is
    // balance-driven). Paper §4.1's premise.
    let run = |acct_ms: u64| {
        let horizon = 20.0;
        let sites = vec![synthetic_site("x.example.com", 150.0, 150.0, horizon, 3)];
        let params = ClusterParams {
            rpn_count: 2,
            accounting_cycle: SimDuration::from_millis(acct_ms),
            service: ServiceCostModel::generic_requests(),
            ..Default::default()
        };
        let mut sim = ClusterSim::new(params, sites, 7);
        sim.run_until(SimTime::from_secs(20));
        let rep = sim.report(SimTime::from_secs(8), SimTime::from_secs(18));
        rep.subscribers[0].served
    };
    let fast = run(50);
    let slow = run(2_000);
    assert!(
        (fast - slow).abs() / fast < 0.05,
        "throughput should be cycle-invariant: {fast:.1} vs {slow:.1}"
    );
}

#[test]
fn facade_reexports_cover_the_workspace() {
    // Compile-time wiring check: every crate is reachable through the
    // facade with consistent types.
    let _cost = gage::core::resource::ResourceVector::generic_request();
    let _grps = gage::core::resource::Grps(1.0);
    let _t = gage::des::SimTime::ZERO;
    let _mac = gage::net::MacAddr::from_node_id(1);
    let _mode = gage::cluster::GageMode::Enabled;
    let _cost = gage::rt::backend::BackendCost::default();
    let _mix = gage::workload::fileset::CLASS_MIX;
}
