//! End-to-end packet-level test of distributed TCP splicing, using only the
//! `gage-net` substrate: a client TCP endpoint talks to "the cluster", the
//! front end emulates the first-leg handshake and hands off to a server TCP
//! endpoint behind a splicing middlebox, and a full HTTP-ish
//! request/response exchange completes with every packet rewritten exactly
//! as the paper's local service manager would.

use bytes::Bytes;
use gage::net::addr::{Endpoint, Port};
use gage::net::endpoint::{Output, TcpEndpoint, TcpState};
use gage::net::packet::Packet;
use gage::net::splice::SpliceMap;
use gage::net::SeqNum;
use std::net::Ipv4Addr;

fn drain_sends(out: Vec<Output>, sink: &mut Vec<Packet>) -> Vec<Output> {
    let mut rest = Vec::new();
    for o in out {
        match o {
            Output::Send(p) => sink.push(p),
            other => rest.push(other),
        }
    }
    rest
}

#[test]
fn spliced_connection_carries_a_full_exchange() {
    let client_ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 1), Port::new(40_000));
    let cluster_ep = Endpoint::new(Ipv4Addr::new(10, 0, 1, 1), Port::HTTP);
    let rpn_ip = Ipv4Addr::new(10, 0, 2, 4);
    let rpn_ep = Endpoint::new(rpn_ip, Port::HTTP);

    // --- First leg: the RDN emulates the handshake itself. ---
    let (mut client, syn) = TcpEndpoint::connect(client_ep, cluster_ep, SeqNum::new(1_000));
    let rdn_isn = SeqNum::new(777_777);
    let synack = Packet::syn_ack(cluster_ep, syn.src(), rdn_isn, syn.tcp.seq + 1);

    let mut client_out = Vec::new();
    client.on_segment(&synack, &mut client_out);
    let mut to_cluster = Vec::new();
    let events = drain_sends(client_out, &mut to_cluster);
    assert!(events.contains(&Output::Established));
    assert_eq!(client.state(), TcpState::Established);

    // Client sends the URL.
    let mut out = Vec::new();
    client.send(
        Bytes::from_static(b"GET /x HTTP/1.0\r\nHost: site1\r\n\r\n"),
        &mut out,
    );
    drain_sends(out, &mut to_cluster);

    // --- Second leg: the RPN's local service manager accepts the
    //     connection replayed by the front end. ---
    let mut server = TcpEndpoint::listen(rpn_ep, SeqNum::new(123));
    // The RDN replays the client's SYN toward the RPN (address rewritten).
    let mut replayed_syn = syn.clone();
    replayed_syn.rewrite_dst_ip(rpn_ip);
    let mut server_out = Vec::new();
    server.on_segment(&replayed_syn, &mut server_out);
    let mut from_server = Vec::new();
    drain_sends(server_out, &mut from_server);
    // Absorb the server's SYN-ACK locally (the client never sees it: the
    // RDN already answered) and complete the second-leg handshake with a
    // locally-generated ACK.
    let server_synack = from_server.remove(0);
    assert!(server_synack.is_syn() && server_synack.is_ack());
    let local_ack = Packet::ack(
        client_ep,
        rpn_ep,
        server_synack.tcp.ack,
        server_synack.tcp.seq + 1,
    );
    let mut server_out = Vec::new();
    server.on_segment(&local_ack, &mut server_out);
    assert!(drain_sends(server_out, &mut from_server).contains(&Output::Established));

    // The splice: first-leg ISN (RDN's) vs second-leg ISN (RPN's).
    let splice = SpliceMap::new(client_ep, cluster_ep, rpn_ip, rdn_isn, server.isn());

    // --- Forward the buffered client packets through the splice. ---
    let mut delivered_request = Vec::new();
    let mut server_sends = Vec::new();
    for pkt in to_cluster.drain(..) {
        let mut pkt = pkt;
        assert!(splice.remap_incoming(&mut pkt), "client packet remaps");
        assert_eq!(pkt.dst().ip, rpn_ip);
        let mut out = Vec::new();
        server.on_segment(&pkt, &mut out);
        for o in drain_sends(out, &mut server_sends) {
            if let Output::Deliver(b) = o {
                delivered_request.extend_from_slice(&b);
            }
        }
    }
    assert_eq!(
        delivered_request, b"GET /x HTTP/1.0\r\nHost: site1\r\n\r\n",
        "request arrives intact at the RPN"
    );

    // --- The server responds; packets flow directly to the client. ---
    let response = Bytes::from(vec![b'r'; 4_000]); // spans 3 MSS segments
    let mut out = Vec::new();
    server.send(response.clone(), &mut out);
    drain_sends(out, &mut server_sends);

    let mut delivered_response = Vec::new();
    let mut client_acks = Vec::new();
    for pkt in server_sends.drain(..) {
        let mut pkt = pkt;
        assert!(splice.remap_outgoing(&mut pkt), "server packet remaps");
        assert_eq!(pkt.src(), cluster_ep, "client sees the cluster address");
        let mut out = Vec::new();
        client.on_segment(&pkt, &mut out);
        for o in drain_sends(out, &mut client_acks) {
            if let Output::Deliver(b) = o {
                delivered_response.extend_from_slice(&b);
            }
        }
    }
    assert_eq!(delivered_response.len(), 4_000);
    assert_eq!(delivered_response, response.to_vec());

    // --- Client ACKs flow back through the splice; the server retires its
    //     retransmission state. ---
    for pkt in client_acks.drain(..) {
        let mut pkt = pkt;
        assert!(splice.remap_incoming(&mut pkt));
        let mut out = Vec::new();
        server.on_segment(&pkt, &mut out);
        assert!(
            out.iter().all(|o| !matches!(o, Output::Send(_))),
            "pure ACKs need no reply"
        );
    }
    assert_eq!(server.unacked_bytes(), 0, "response fully acknowledged");
    assert!(!server.needs_retransmit_timer());
}
