//! Randomized property tests over the core data structures and invariants.
//!
//! Each property is checked against a few hundred cases drawn from a seeded
//! [`StdRng`], so failures are deterministic and reproducible.

use gage::core::conn_table::{ConnTable, Route};
use gage::core::node::RpnId;
use gage::core::queue::SubscriberQueues;
use gage::core::resource::ResourceVector;
use gage::core::subscriber::SubscriberId;
use gage::net::addr::{Endpoint, FourTuple, MacAddr, Port};
use gage::net::splice::SpliceMap;
use gage::net::SeqNum;
use gage::workload::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;

const CASES: usize = 256;

fn rv(rng: &mut StdRng) -> ResourceVector {
    ResourceVector::new(
        rng.gen_range(-1e9..1e9),
        rng.gen_range(-1e9..1e9),
        rng.gen_range(-1e9..1e9),
    )
}

// ---- ResourceVector algebra ----

#[test]
fn resource_add_sub_inverse() {
    let mut rng = StdRng::seed_from_u64(0xA1);
    for _ in 0..CASES {
        let (a, b) = (rv(&mut rng), rv(&mut rng));
        let back = (a + b) - b;
        assert!((back.cpu_us - a.cpu_us).abs() <= 1e-6 * (1.0 + a.cpu_us.abs()));
        assert!((back.disk_us - a.disk_us).abs() <= 1e-6 * (1.0 + a.disk_us.abs()));
        assert!((back.net_bytes - a.net_bytes).abs() <= 1e-6 * (1.0 + a.net_bytes.abs()));
    }
}

#[test]
fn resource_min_max_bracket() {
    let mut rng = StdRng::seed_from_u64(0xA2);
    for _ in 0..CASES {
        let (a, b) = (rv(&mut rng), rv(&mut rng));
        let lo = a.min(b);
        let hi = a.max(b);
        assert!(lo.fits_within(hi));
        assert!(lo.fits_within(a) && lo.fits_within(b));
        assert!(a.fits_within(hi) && b.fits_within(hi));
    }
}

#[test]
fn resource_clamp_is_nonnegative() {
    let mut rng = StdRng::seed_from_u64(0xA3);
    for _ in 0..CASES {
        assert!(rv(&mut rng).clamped_nonnegative().all_nonnegative());
    }
}

#[test]
fn generic_equivalents_scale() {
    let mut rng = StdRng::seed_from_u64(0xA4);
    for _ in 0..CASES {
        let a: f64 = rng.gen_range(0.0..1e6);
        let k: f64 = rng.gen_range(0.0..1e3);
        let v = ResourceVector::generic_request() * a;
        let scaled = v * k;
        let lhs = scaled.generic_equivalents();
        let rhs = v.generic_equivalents() * k;
        assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + rhs.abs()));
    }
}

// ---- Sequence-number arithmetic ----

#[test]
fn seq_add_sub_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xB1);
    for _ in 0..CASES {
        let base: u32 = rng.gen();
        let delta: u32 = rng.gen();
        let s = SeqNum::new(base);
        assert_eq!((s + delta) - s, delta);
        assert_eq!((s + delta) - delta, s);
    }
}

#[test]
fn seq_before_is_antisymmetric_for_small_deltas() {
    let mut rng = StdRng::seed_from_u64(0xB2);
    for _ in 0..CASES {
        let base: u32 = rng.gen();
        let delta: u32 = rng.gen_range(1..1_000_000);
        let a = SeqNum::new(base);
        let b = a + delta;
        assert!(a.before(b));
        assert!(!b.before(a));
        assert!(b.after(a));
    }
}

#[test]
fn seq_window_contains_exactly_len() {
    let mut rng = StdRng::seed_from_u64(0xB3);
    for _ in 0..CASES {
        let base: u32 = rng.gen();
        let len: u32 = rng.gen_range(1..10_000);
        let probe: u32 = rng.gen();
        let lo = SeqNum::new(base);
        let p = SeqNum::new(probe);
        let inside = p.in_window(lo, len);
        let dist = p - lo;
        assert_eq!(inside, dist < len);
    }
}

// ---- Splice remapping is a bijection on sequence space ----

fn splice_map(rdn_isn: u32, rpn_isn: u32) -> SpliceMap {
    SpliceMap::new(
        Endpoint::new(Ipv4Addr::new(10, 0, 0, 1), Port::new(4000)),
        Endpoint::new(Ipv4Addr::new(10, 0, 1, 1), Port::HTTP),
        Ipv4Addr::new(10, 0, 2, 4),
        SeqNum::new(rdn_isn),
        SeqNum::new(rpn_isn),
    )
}

#[test]
fn splice_seq_maps_invert() {
    let mut rng = StdRng::seed_from_u64(0xC1);
    for _ in 0..CASES {
        let map = splice_map(rng.gen(), rng.gen());
        let x = SeqNum::new(rng.gen());
        assert_eq!(map.client_to_server_ack(map.server_to_client_seq(x)), x);
        assert_eq!(map.server_to_client_seq(map.client_to_server_ack(x)), x);
    }
}

#[test]
fn splice_preserves_stream_offsets() {
    let mut rng = StdRng::seed_from_u64(0xC2);
    for _ in 0..CASES {
        let rdn_isn: u32 = rng.gen();
        let rpn_isn: u32 = rng.gen();
        let offset: u32 = rng.gen_range(0..1_000_000);
        let map = splice_map(rdn_isn, rpn_isn);
        // Byte at server offset k appears at client offset k.
        let server_seq = SeqNum::new(rpn_isn) + 1 + offset;
        let client_seq = map.server_to_client_seq(server_seq);
        assert_eq!(client_seq - (SeqNum::new(rdn_isn) + 1), offset);
    }
}

// ---- Queues: conservation of requests ----

#[test]
fn queue_conserves_requests() {
    let mut rng = StdRng::seed_from_u64(0xD1);
    for _ in 0..64 {
        let n_ops = rng.gen_range(1..200);
        let mut q: SubscriberQueues<u64> = SubscriberQueues::new(3, 8);
        let mut accepted = 0u64;
        let mut dropped = 0u64;
        let mut dequeued = 0u64;
        for _ in 0..n_ops {
            let s = SubscriberId(rng.gen_range(0u32..3));
            let val: u64 = rng.gen_range(0u64..1000);
            if val.is_multiple_of(3) {
                if q.dequeue(s).is_some() {
                    dequeued += 1;
                }
            } else {
                match q.enqueue(s, val) {
                    Ok(_) => accepted += 1,
                    Err(_) => dropped += 1,
                }
            }
        }
        assert_eq!(accepted, dequeued + q.total_len() as u64);
        let total_counted: u64 = (0..3)
            .map(|i| q.accepted(SubscriberId(i)) + q.dropped(SubscriberId(i)))
            .sum();
        assert_eq!(total_counted, accepted + dropped);
    }
}

// ---- Connection table behaves like a map ----

#[test]
fn conn_table_matches_model() {
    let mut rng = StdRng::seed_from_u64(0xE1);
    for _ in 0..32 {
        let n_ops = rng.gen_range(1..300);
        let mut table = ConnTable::new();
        let mut model: std::collections::HashMap<u16, Route> = std::collections::HashMap::new();
        let cluster = Endpoint::new(Ipv4Addr::new(10, 0, 1, 1), Port::HTTP);
        let tuple = |k: u16| {
            FourTuple::new(
                Endpoint::new(Ipv4Addr::new(10, 0, 0, 1), Port::new(1000 + k)),
                cluster,
            )
        };
        for _ in 0..n_ops {
            let key: u16 = rng.gen_range(0u16..50);
            match rng.gen_range(0u8..3) {
                0 => {
                    let route = Route {
                        rpn: RpnId(key % 8),
                        rpn_mac: MacAddr::from_node_id(key % 8),
                    };
                    assert_eq!(table.insert(tuple(key), route), model.insert(key, route));
                }
                1 => {
                    assert_eq!(table.lookup(tuple(key)), model.get(&key).copied());
                }
                _ => {
                    assert_eq!(table.remove(tuple(key)), model.remove(&key));
                }
            }
            assert_eq!(table.len(), model.len());
        }
    }
}

// ---- Zipf sampler ----

#[test]
fn zipf_pmf_is_a_distribution() {
    let mut rng = StdRng::seed_from_u64(0xF1);
    for _ in 0..64 {
        let n = rng.gen_range(1usize..200);
        let alpha: f64 = rng.gen_range(0.0..3.0);
        let z = Zipf::new(n, alpha);
        let total: f64 = (0..n).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Monotone non-increasing in rank.
        for r in 1..n {
            assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-12);
        }
    }
}

#[test]
fn zipf_samples_in_range() {
    let mut rng = StdRng::seed_from_u64(0xF2);
    for _ in 0..64 {
        let n = rng.gen_range(1usize..100);
        let alpha: f64 = rng.gen_range(0.0..2.0);
        let z = Zipf::new(n, alpha);
        let mut sample_rng = StdRng::seed_from_u64(rng.gen());
        for _ in 0..50 {
            assert!(z.sample(&mut sample_rng) < n);
        }
    }
}
