//! Property-based tests (proptest) over the core data structures and
//! invariants.

use gage::core::conn_table::{ConnTable, Route};
use gage::core::node::RpnId;
use gage::core::queue::SubscriberQueues;
use gage::core::resource::ResourceVector;
use gage::core::subscriber::SubscriberId;
use gage::net::addr::{Endpoint, FourTuple, MacAddr, Port};
use gage::net::splice::SpliceMap;
use gage::net::SeqNum;
use gage::workload::zipf::Zipf;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn rv() -> impl Strategy<Value = ResourceVector> {
    (
        -1e9..1e9f64,
        -1e9..1e9f64,
        -1e9..1e9f64,
    )
        .prop_map(|(c, d, n)| ResourceVector::new(c, d, n))
}

proptest! {
    // ---- ResourceVector algebra ----

    #[test]
    fn resource_add_sub_inverse(a in rv(), b in rv()) {
        let back = (a + b) - b;
        prop_assert!((back.cpu_us - a.cpu_us).abs() <= 1e-6 * (1.0 + a.cpu_us.abs()));
        prop_assert!((back.disk_us - a.disk_us).abs() <= 1e-6 * (1.0 + a.disk_us.abs()));
        prop_assert!((back.net_bytes - a.net_bytes).abs() <= 1e-6 * (1.0 + a.net_bytes.abs()));
    }

    #[test]
    fn resource_min_max_bracket(a in rv(), b in rv()) {
        let lo = a.min(b);
        let hi = a.max(b);
        prop_assert!(lo.fits_within(hi));
        prop_assert!(lo.fits_within(a) && lo.fits_within(b));
        prop_assert!(a.fits_within(hi) && b.fits_within(hi));
    }

    #[test]
    fn resource_clamp_is_nonnegative(a in rv()) {
        prop_assert!(a.clamped_nonnegative().all_nonnegative());
    }

    #[test]
    fn generic_equivalents_scale(a in 0.0..1e6f64, k in 0.0..1e3f64) {
        let v = ResourceVector::generic_request() * a;
        let scaled = v * k;
        let lhs = scaled.generic_equivalents();
        let rhs = v.generic_equivalents() * k;
        prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + rhs.abs()));
    }

    // ---- Sequence-number arithmetic ----

    #[test]
    fn seq_add_sub_roundtrip(base in any::<u32>(), delta in any::<u32>()) {
        let s = SeqNum::new(base);
        prop_assert_eq!((s + delta) - s, delta);
        prop_assert_eq!((s + delta) - delta, s);
    }

    #[test]
    fn seq_before_is_antisymmetric_for_small_deltas(base in any::<u32>(), delta in 1u32..1_000_000) {
        let a = SeqNum::new(base);
        let b = a + delta;
        prop_assert!(a.before(b));
        prop_assert!(!b.before(a));
        prop_assert!(b.after(a));
    }

    #[test]
    fn seq_window_contains_exactly_len(base in any::<u32>(), len in 1u32..10_000, probe in any::<u32>()) {
        let lo = SeqNum::new(base);
        let p = SeqNum::new(probe);
        let inside = p.in_window(lo, len);
        let dist = p - lo;
        prop_assert_eq!(inside, dist < len);
    }

    // ---- Splice remapping is a bijection on sequence space ----

    #[test]
    fn splice_seq_maps_invert(rdn_isn in any::<u32>(), rpn_isn in any::<u32>(), s in any::<u32>()) {
        let map = SpliceMap::new(
            Endpoint::new(Ipv4Addr::new(10, 0, 0, 1), Port::new(4000)),
            Endpoint::new(Ipv4Addr::new(10, 0, 1, 1), Port::HTTP),
            Ipv4Addr::new(10, 0, 2, 4),
            SeqNum::new(rdn_isn),
            SeqNum::new(rpn_isn),
        );
        let x = SeqNum::new(s);
        prop_assert_eq!(map.client_to_server_ack(map.server_to_client_seq(x)), x);
        prop_assert_eq!(map.server_to_client_seq(map.client_to_server_ack(x)), x);
    }

    #[test]
    fn splice_preserves_stream_offsets(rdn_isn in any::<u32>(), rpn_isn in any::<u32>(), offset in 0u32..1_000_000) {
        let map = SpliceMap::new(
            Endpoint::new(Ipv4Addr::new(10, 0, 0, 1), Port::new(4000)),
            Endpoint::new(Ipv4Addr::new(10, 0, 1, 1), Port::HTTP),
            Ipv4Addr::new(10, 0, 2, 4),
            SeqNum::new(rdn_isn),
            SeqNum::new(rpn_isn),
        );
        // Byte at server offset k appears at client offset k.
        let server_seq = SeqNum::new(rpn_isn) + 1 + offset;
        let client_seq = map.server_to_client_seq(server_seq);
        prop_assert_eq!(client_seq - (SeqNum::new(rdn_isn) + 1), offset);
    }

    // ---- Queues: conservation of requests ----

    #[test]
    fn queue_conserves_requests(ops in proptest::collection::vec((0u32..3, 0u64..1000), 1..200)) {
        let mut q: SubscriberQueues<u64> = SubscriberQueues::new(3, 8);
        let mut accepted = 0u64;
        let mut dropped = 0u64;
        let mut dequeued = 0u64;
        for (sub, val) in ops {
            let s = SubscriberId(sub);
            if val % 3 == 0 {
                if q.dequeue(s).is_some() {
                    dequeued += 1;
                }
            } else {
                match q.enqueue(s, val) {
                    Ok(_) => accepted += 1,
                    Err(_) => dropped += 1,
                }
            }
        }
        prop_assert_eq!(accepted, dequeued + q.total_len() as u64);
        let total_counted: u64 = (0..3)
            .map(|i| q.accepted(SubscriberId(i)) + q.dropped(SubscriberId(i)))
            .sum();
        prop_assert_eq!(total_counted, accepted + dropped);
    }

    // ---- Connection table behaves like a map ----

    #[test]
    fn conn_table_matches_model(ops in proptest::collection::vec((0u16..50, 0u8..3), 1..300)) {
        let mut table = ConnTable::new();
        let mut model: std::collections::HashMap<u16, Route> = std::collections::HashMap::new();
        let cluster = Endpoint::new(Ipv4Addr::new(10, 0, 1, 1), Port::HTTP);
        let tuple = |k: u16| FourTuple::new(
            Endpoint::new(Ipv4Addr::new(10, 0, 0, 1), Port::new(1000 + k)),
            cluster,
        );
        for (key, op) in ops {
            match op {
                0 => {
                    let route = Route { rpn: RpnId(key % 8), rpn_mac: MacAddr::from_node_id(key % 8) };
                    prop_assert_eq!(table.insert(tuple(key), route), model.insert(key, route));
                }
                1 => {
                    prop_assert_eq!(table.lookup(tuple(key)), model.get(&key).copied());
                }
                _ => {
                    prop_assert_eq!(table.remove(tuple(key)), model.remove(&key));
                }
            }
            prop_assert_eq!(table.len(), model.len());
        }
    }

    // ---- Zipf sampler ----

    #[test]
    fn zipf_pmf_is_a_distribution(n in 1usize..200, alpha in 0.0..3.0f64) {
        let z = Zipf::new(n, alpha);
        let total: f64 = (0..n).map(|r| z.pmf(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        // Monotone non-increasing in rank.
        for r in 1..n {
            prop_assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-12);
        }
    }

    #[test]
    fn zipf_samples_in_range(n in 1usize..100, alpha in 0.0..2.0f64, seed in any::<u64>()) {
        use rand::SeedableRng;
        let z = Zipf::new(n, alpha);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }
}
